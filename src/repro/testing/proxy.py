"""A TCP fault proxy: the wire's misbehaviour, made reproducible.

The in-process fault points (:mod:`repro.testing.faults`) can make the
*engine* fail at any step; this proxy makes the *network* fail.  It sits
between a :class:`~repro.server.client.ReproClient` and a
:class:`~repro.server.server.ReproServer` and, per forwarded chunk,
consults a :class:`FaultPolicy` that can

* **drop** the connection (both directions die, like a yanked cable),
* **truncate** a chunk mid-frame and then drop (the classic torn reply
  the exactly-once protocol exists for),
* **delay** a chunk (a congested or half-stalled link),
* **garble** a chunk (bit flips the CRC-less JSON framing must reject).

Policies count matching chunks like fault injectors count arrivals
(``skip``/``times``), so a test can tear exactly the second reply and
then let every redelivery through::

    with FaultProxy(server.address, TruncateChunk("s2c", keep=5, skip=1)) as proxy:
        client = ReproClient(*proxy.address)
        ...

:class:`ChaosPolicy` drives the same actions from a seeded RNG for the
soak harness — same seed, same faults, same schedule.

Everything here lives under ``repro.testing`` on purpose: it may use
``random`` and wall-clock sleeps (lint rule RPR003 exempts this tree),
and the engine never imports it.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass

__all__ = [
    "ChaosPolicy",
    "Delay",
    "DropConnection",
    "FaultPolicy",
    "FaultProxy",
    "Garble",
    "PassThrough",
    "TruncateChunk",
    "Verdict",
]

#: Directions a policy can match: client->server and server->client.
DIRECTIONS = ("c2s", "s2c")

_CHUNK = 65536
_POLL_S = 0.2


@dataclass(frozen=True)
class Verdict:
    """What to do with one forwarded chunk."""

    action: str = "pass"  # pass | drop | truncate | delay | garble
    keep: int = 0         # truncate: bytes to forward before dropping
    delay_s: float = 0.0  # delay: sleep before forwarding

    @classmethod
    def passthrough(cls) -> "Verdict":
        return cls()


class FaultPolicy:
    """Decides per chunk; counts matching arrivals like an injector.

    Subclasses implement :meth:`fault` — the verdict for an arrival the
    ``skip``/``times`` window selects; everything else passes.
    """

    def __init__(
        self, direction: str = "s2c", skip: int = 0, times: int | None = 1
    ) -> None:
        if direction not in DIRECTIONS and direction != "any":
            raise ValueError(f"unknown direction {direction!r}")
        self.direction = direction
        self.skip = skip
        self.times = times
        self.hits = 0
        self.fired = 0
        self._mu = threading.Lock()

    def decide(self, direction: str, data: bytes) -> Verdict:
        if self.direction != "any" and direction != self.direction:
            return Verdict.passthrough()
        with self._mu:
            index = self.hits
            self.hits += 1
            selected = index >= self.skip and (
                self.times is None or index < self.skip + self.times
            )
            if selected:
                self.fired += 1
        if not selected:
            return Verdict.passthrough()
        return self.fault(data)

    def fault(self, data: bytes) -> Verdict:  # pragma: no cover - abstract
        raise NotImplementedError


class PassThrough(FaultPolicy):
    """Forward everything (the proxy as a plain relay)."""

    def __init__(self) -> None:
        super().__init__("any", times=0)

    def fault(self, data: bytes) -> Verdict:  # pragma: no cover - unselected
        return Verdict.passthrough()


class DropConnection(FaultPolicy):
    """Kill the connection when the selected chunk arrives."""

    def fault(self, data: bytes) -> Verdict:
        return Verdict("drop")


class TruncateChunk(FaultPolicy):
    """Forward only ``keep`` bytes of the selected chunk, then drop —
    tears a frame mid-payload when ``keep`` lands inside one."""

    def __init__(
        self,
        direction: str = "s2c",
        keep: int = 5,
        skip: int = 0,
        times: int | None = 1,
    ) -> None:
        super().__init__(direction, skip, times)
        self.keep = keep

    def fault(self, data: bytes) -> Verdict:
        return Verdict("truncate", keep=min(self.keep, len(data)))


class Delay(FaultPolicy):
    """Stall the selected chunk for ``delay_s`` before forwarding."""

    def __init__(
        self,
        direction: str = "any",
        delay_s: float = 0.05,
        skip: int = 0,
        times: int | None = 1,
    ) -> None:
        super().__init__(direction, skip, times)
        self.delay_s = delay_s

    def fault(self, data: bytes) -> Verdict:
        return Verdict("delay", delay_s=self.delay_s)


class Garble(FaultPolicy):
    """Flip bits in the selected chunk (the receiver must reject it)."""

    def fault(self, data: bytes) -> Verdict:
        return Verdict("garble")


class ChaosPolicy(FaultPolicy):
    """Seeded random mix of every fault, for the soak harness.

    Rates are per forwarded chunk; the same seed reproduces the same
    fault schedule against the same traffic.
    """

    def __init__(
        self,
        seed: int,
        drop_rate: float = 0.01,
        truncate_rate: float = 0.01,
        delay_rate: float = 0.02,
        garble_rate: float = 0.0,
        max_delay_s: float = 0.02,
    ) -> None:
        super().__init__("any", times=None)
        self._rng = random.Random(seed)
        self.drop_rate = drop_rate
        self.truncate_rate = truncate_rate
        self.delay_rate = delay_rate
        self.garble_rate = garble_rate
        self.max_delay_s = max_delay_s

    def fault(self, data: bytes) -> Verdict:
        with self._mu:
            roll = self._rng.random()
            delay = self._rng.uniform(0.0, self.max_delay_s)
            keep = self._rng.randrange(max(1, len(data)))
        if roll < self.drop_rate:
            return Verdict("drop")
        roll -= self.drop_rate
        if roll < self.truncate_rate:
            return Verdict("truncate", keep=keep)
        roll -= self.truncate_rate
        if roll < self.garble_rate:
            return Verdict("garble")
        roll -= self.garble_rate
        if roll < self.delay_rate:
            return Verdict("delay", delay_s=delay)
        return Verdict.passthrough()


# ----------------------------------------------------------------------


class _Relay:
    """One proxied connection: two pump threads and a shared kill switch."""

    def __init__(
        self,
        proxy: "FaultProxy",
        client_sock: socket.socket,
        server_sock: socket.socket,
    ) -> None:
        self.proxy = proxy
        self.client_sock = client_sock
        self.server_sock = server_sock
        self._dead = threading.Event()
        self.threads = [
            threading.Thread(
                target=self._pump,
                args=(client_sock, server_sock, "c2s"),
                daemon=True,
            ),
            threading.Thread(
                target=self._pump,
                args=(server_sock, client_sock, "s2c"),
                daemon=True,
            ),
        ]
        for thread in self.threads:
            thread.start()

    def kill(self) -> None:
        self._dead.set()
        for sock in (self.client_sock, self.server_sock):
            try:
                sock.close()
            except OSError:
                pass

    def _pump(self, src: socket.socket, dst: socket.socket, direction: str) -> None:
        try:
            src.settimeout(_POLL_S)
        except OSError:
            # kill() closed the socket before this thread got scheduled.
            self.kill()
            return
        try:
            while not self._dead.is_set() and not self.proxy._stopping.is_set():
                try:
                    data = src.recv(_CHUNK)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                verdict = self.proxy.policy.decide(direction, data)
                if verdict.action != "pass":
                    self.proxy._count_fault(verdict.action)
                if verdict.action == "drop":
                    break
                if verdict.action == "truncate":
                    self._send(dst, data[: verdict.keep])
                    break
                if verdict.action == "delay":
                    time.sleep(verdict.delay_s)
                elif verdict.action == "garble":
                    data = bytes(b ^ 0xA5 for b in data)
                if not self._send(dst, data):
                    break
                self.proxy._count_forward(len(data))
        finally:
            self.kill()

    @staticmethod
    def _send(dst: socket.socket, data: bytes) -> bool:
        try:
            dst.sendall(data)
            return True
        except OSError:
            return False


class FaultProxy:
    """A faulty TCP relay in front of a wire server.

    Usable as a context manager; ``policy`` may be swapped at runtime
    between requests (tests often pass cleanly, then arm one tear).
    """

    def __init__(
        self,
        upstream: tuple[str, int],
        policy: FaultPolicy | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = upstream
        self.policy = policy if policy is not None else PassThrough()
        self.host = host
        self._requested_port = port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._mu = threading.Lock()
        self._relays: list[_Relay] = []
        self.connections = 0
        self.bytes_forwarded = 0
        self.faults: dict[str, int] = {}

    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("proxy is not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "FaultProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(32)
        listener.settimeout(_POLL_S)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fault-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join(5.0)
        with self._mu:
            relays = list(self._relays)
        for relay in relays:
            relay.kill()
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def kill_connections(self) -> int:
        """Drop every live proxied connection right now."""
        with self._mu:
            relays = list(self._relays)
            self._relays.clear()
        for relay in relays:
            relay.kill()
        return len(relays)

    def __enter__(self) -> "FaultProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                client_sock, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                server_sock = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                client_sock.close()
                continue
            with self._mu:
                self.connections += 1
                self._relays.append(_Relay(self, client_sock, server_sock))
                # Dead relays accumulate only per live proxy; prune here.
                self._relays = [
                    r for r in self._relays if not r._dead.is_set()
                ]

    def _count_fault(self, action: str) -> None:
        with self._mu:
            self.faults[action] = self.faults.get(action, 0) + 1

    def _count_forward(self, n: int) -> None:
        with self._mu:
            self.bytes_forwarded += n
