"""Systematic fault injection for the enforcement engine.

The engine's crash-consistency claim is only testable if a failure can
be provoked *at every interesting step* of enforcement: mid-trigger,
mid-index-split, mid-batch.  This module provides named **fault points**
threaded through the storage, query, trigger and batch layers, plus
**injectors** that decide what happens when execution reaches one:

* :class:`FailInjector` — raise an exception (a vetoed statement, a
  broken disk, an assertion);
* :class:`CrashInjector` — freeze the database and raise
  :class:`~repro.errors.SimulatedCrash`, which unwinds to the harness
  like a process death (cleanup handlers are skipped — it derives from
  ``BaseException``); recovery then proceeds from the write-ahead log;
* :class:`TransientInjector` — fail the first *k* arrivals, then pass,
  modelling lock timeouts and lost writes that succeed on retry under
  :func:`retry_transient`'s capped exponential backoff.

Fault points are **disabled by default** and compiled down to a single
module-global boolean test per crossing, so production paths pay no
measurable overhead (asserted by ``benchmarks/bench_table01_insertions``
staying within noise).

Usage::

    from repro.testing import faults

    with faults.injected("trigger.parent_delete", faults.CrashInjector(db)):
        db.delete_where("P", Eq("k1", 7))     # raises SimulatedCrash
    wal.simulate_crash(db)                     # recover to last commit

    with faults.tracing() as hits:             # which points does a
        run_workload(db)                       # workload actually cross?
    assert "btree.split" in hits
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

from ..errors import ReproError, SimulatedCrash, TransientFault

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.database import Database

#: Every fault point compiled into the engine, registered up front so
#: harnesses can enumerate them without first running a workload.
#: Threading a new ``faults.fire(...)`` call through the engine must be
#: accompanied by an entry here.  This is machine-enforced twice: lint
#: rule RPR001 (``python -m repro lint``) cross-checks every ``fire``
#: literal in the source against this registry and vice versa, and
#: :func:`_validate_registry` below rejects a malformed registry at
#: import time (tests/test_faults.py asserts both agree).
KNOWN_POINTS: tuple[str, ...] = (
    # indexes/btree.py — structural changes of the B+ tree
    "btree.split",
    "btree.unlink",
    # query/dml.py — around each physical row mutation
    "dml.insert.pre",
    "dml.insert.post",
    "dml.delete.pre",
    "dml.delete.post",
    "dml.update.pre",
    "dml.update.post",
    # triggers/partial_ri.py — the generated §6.1 trigger bodies
    "trigger.child_check",
    "trigger.parent_restrict",
    "trigger.parent_delete",
    # query/enforcement.py — inside the state loop
    "enforce.state_probe",
    "enforce.apply_action",
    # core/batch.py — the §9 shared-execution paths
    "batch.probe",
    "batch.insert_row",
    "batch.state_loop",
    # concurrency/locks.py — every lock request / each blocking wait
    # (a TransientInjector here simulates lock-contention storms)
    "lock.acquire",
    "lock.wait",
    # server/server.py — once per decoded client request
    "server.request",
    # server/wire.py + server/server.py — the wire transport: before
    # each frame send, before each recv() chunk (so a TransientInjector
    # can tear a frame mid-payload), and per accepted connection
    "wire.send",
    "wire.recv",
    "wire.accept",
    # sharding/twophase.py — the distributed-commit hot path: on entry
    # to PREPARE (before the witness locks and the durable prepare
    # record), on entry to DECIDE (before the durable decision record
    # and the data commit/rollback), and per in-doubt resolution probe
    # against the coordinator's decision log.  A CrashInjector at any of
    # them must land recovery on a 2PC state the resolver can finish.
    "shard.prepare",
    "shard.decide",
    "shard.resolve",
)


class FaultError(ReproError):
    """Default exception raised by :class:`FailInjector`."""


def _validate_registry(points: tuple[str, ...]) -> None:
    """Reject a malformed registry the moment the module is imported.

    Duplicates would make ``install``/``uninstall`` ambiguous; names are
    constrained to the ``layer.point[.sub]`` shape the lint rule RPR001
    greps for, so a typo cannot silently fork the naming scheme.
    """
    seen: set[str] = set()
    for point in points:
        if point in seen:
            raise FaultError(f"duplicate fault point {point!r} in KNOWN_POINTS")
        seen.add(point)
        parts = point.split(".")
        if len(parts) < 2 or not all(
            part and part.replace("_", "a").isalnum() and part.islower()
            for part in parts
        ):
            raise FaultError(
                f"malformed fault point name {point!r}: expected "
                "lowercase dotted 'layer.point' segments"
            )


_validate_registry(KNOWN_POINTS)


class Injector:
    """Base class: fires on arrivals ``skip``‥``skip+times-1`` at a point.

    ``hits`` counts every arrival (fired or not) so harnesses can learn
    how often a workload crosses a point.
    """

    def __init__(self, skip: int = 0, times: int | None = 1) -> None:
        self.skip = skip
        self.times = times
        self.hits = 0
        self.fired = 0

    def arrive(self, point: str) -> None:
        index = self.hits
        self.hits += 1
        if index < self.skip:
            return
        if self.times is not None and index >= self.skip + self.times:
            return
        self.fired += 1
        self.fire(point)

    def fire(self, point: str) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class FailInjector(Injector):
    """Raise an exception at the fault point."""

    def __init__(
        self,
        exc_factory: Callable[[str], BaseException] | None = None,
        skip: int = 0,
        times: int | None = 1,
    ) -> None:
        super().__init__(skip, times)
        self._factory = exc_factory or (
            lambda point: FaultError(f"injected fault at {point!r}")
        )

    def fire(self, point: str) -> None:
        raise self._factory(point)


class CrashInjector(Injector):
    """Simulate a process death at the fault point.

    Freezes *db* first (transaction commit/rollback/log become no-ops, so
    context managers on the unwind path cannot tidy the state a real
    crash would have left torn), then raises
    :class:`~repro.errors.SimulatedCrash`.  The write-ahead log's
    volatile buffer dies with the process; recovery replays the durable
    prefix (:meth:`repro.storage.wal.WriteAheadLog.simulate_crash`).
    """

    def __init__(self, db: "Database", skip: int = 0, times: int | None = 1) -> None:
        super().__init__(skip, times)
        self._db = db

    def fire(self, point: str) -> None:
        self._db.freeze_for_crash()
        raise SimulatedCrash(f"simulated crash at {point!r}")


class TransientInjector(Injector):
    """Raise :class:`~repro.errors.TransientFault` for the first *times*
    arrivals, then let execution pass — the classic retryable fault."""

    def __init__(self, times: int = 1, skip: int = 0) -> None:
        super().__init__(skip, times)

    def fire(self, point: str) -> None:
        raise TransientFault(f"injected transient fault at {point!r}")


class _Tracer:
    """Records which points a workload crosses (never raises)."""

    def __init__(self) -> None:
        self.hits: dict[str, int] = {}

    def arrive(self, point: str) -> None:
        self.hits[point] = self.hits.get(point, 0) + 1


# ----------------------------------------------------------------------
# Registry.  ``_armed`` is the single flag the hot path tests: with no
# injector installed and no tracer active, fire() returns immediately.

_injectors: dict[str, Injector] = {}
_tracers: list[_Tracer] = []
_armed = False


def _rearm() -> None:
    global _armed
    _armed = bool(_injectors) or bool(_tracers)


def fire(point: str) -> None:
    """Cross a fault point.  No-op unless an injector or tracer is live."""
    if not _armed:
        return
    for tracer in _tracers:
        tracer.arrive(point)
    injector = _injectors.get(point)
    if injector is not None:
        injector.arrive(point)


def names() -> tuple[str, ...]:
    """Every registered fault point name."""
    return KNOWN_POINTS


def install(point: str, injector: Injector) -> Injector:
    """Install *injector* at *point* (replacing any previous one)."""
    if point not in KNOWN_POINTS:
        raise FaultError(f"unknown fault point {point!r}")
    _injectors[point] = injector
    _rearm()
    return injector


def uninstall(point: str) -> None:
    _injectors.pop(point, None)
    _rearm()


def reset() -> None:
    """Remove every injector and tracer (the default, zero-overhead state)."""
    _injectors.clear()
    _tracers.clear()
    _rearm()


def active() -> bool:
    return _armed


@contextmanager
def injected(point: str, injector: Injector) -> Iterator[Injector]:
    """Scope an injector to a ``with`` block."""
    install(point, injector)
    try:
        yield injector
    finally:
        uninstall(point)


@contextmanager
def tracing() -> Iterator[dict[str, int]]:
    """Record the fault points (and counts) a block crosses."""
    tracer = _Tracer()
    _tracers.append(tracer)
    _rearm()
    try:
        yield tracer.hits
    finally:
        _tracers.remove(tracer)
        _rearm()


# ----------------------------------------------------------------------
# Retry with capped exponential backoff, for transient faults.


def retry_transient(
    fn: Callable[[], Any],
    *,
    attempts: int = 6,
    base_delay: float = 0.001,
    max_delay: float = 0.05,
    sleep: Callable[[float], None] = time.sleep,
    retry_on: tuple[type[BaseException], ...] = (TransientFault,),
) -> Any:
    """Run *fn*, retrying on transient faults.

    Delays double from *base_delay* up to the *max_delay* cap; the final
    attempt re-raises.  *sleep* is injectable so tests can assert the
    backoff schedule without waiting for it.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = base_delay
    for attempt in range(attempts):
        try:
            return fn()
        except retry_on:
            if attempt == attempts - 1:
                raise
            sleep(min(delay, max_delay))
            delay *= 2
