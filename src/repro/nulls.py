"""The SQL null marker and partial-tuple subsumption.

The SQL standard treats ``NULL`` as a *marker* for a missing value, not as
a value.  This module provides a dedicated singleton :data:`NULL` (instead
of Python's ``None``) so that "no information" cannot be confused with
"the Python null object" flowing through application code, plus the
subsumption relation from the paper (Section 3):

    a tuple *c* over columns ``[f1..fn]`` is **subsumed** by a tuple *p*
    over ``[k1..kn]`` iff for every *i*, ``c[fi] = NULL`` or
    ``c[fi] = p[ki]``.

Partial referential integrity requires every child tuple to be subsumed by
some parent tuple on the foreign-key / key columns.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


class NullMarker:
    """Singleton marker for SQL ``NULL``.

    The class is instantiated exactly once (as :data:`NULL`); attempts to
    create more instances return the same object so identity tests with
    ``is`` stay safe even across pickling.
    """

    _instance: "NullMarker | None" = None

    def __new__(cls) -> "NullMarker":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __copy__(self) -> "NullMarker":
        return self

    def __deepcopy__(self, memo: dict) -> "NullMarker":
        return self

    def __reduce__(self):
        return (NullMarker, ())


#: The one and only SQL null marker used throughout the library.
NULL = NullMarker()


def is_null(value: Any) -> bool:
    """Return True iff *value* is the SQL null marker."""
    return value is NULL


def is_total(values: Sequence[Any]) -> bool:
    """Return True iff no component of *values* is NULL.

    A "total" foreign-key value is one with no null marker; under simple
    semantics only total values must be matched by a parent.
    """
    return all(v is not NULL for v in values)


def is_fully_null(values: Sequence[Any]) -> bool:
    """Return True iff every component of *values* is NULL."""
    return all(v is NULL for v in values)


def null_positions(values: Sequence[Any]) -> tuple[int, ...]:
    """Return the 0-based positions of the components that are NULL.

    The returned tuple identifies the *state* of a partial foreign-key
    value in the sense of the paper (Section 3): children with the same
    null positions are in the same state.
    """
    return tuple(i for i, v in enumerate(values) if v is NULL)


def total_positions(values: Sequence[Any]) -> tuple[int, ...]:
    """Return the 0-based positions of the components that are not NULL."""
    return tuple(i for i, v in enumerate(values) if v is not NULL)


def is_subsumed_by(child: Sequence[Any], parent: Sequence[Any]) -> bool:
    """Partial-semantics subsumption test (paper, Section 3).

    Returns True iff every component of *child* is NULL or equals the
    corresponding component of *parent*.  Raises ``ValueError`` when the
    two sequences disagree on length, because subsumption is only defined
    for equal-length column sequences.
    """
    if len(child) != len(parent):
        raise ValueError(
            f"subsumption needs equal arity, got {len(child)} and {len(parent)}"
        )
    return all(c is NULL or c == p for c, p in zip(child, parent))


def impute(child: Sequence[Any], parent: Sequence[Any]) -> tuple[Any, ...]:
    """Fill every NULL component of *child* with the parent's value.

    This is the imputation step of the intelligent update/query services
    (paper, Sections 4 and 5): the result agrees with *child* on the total
    components and with *parent* elsewhere.  *parent* must subsume *child*.
    """
    if not is_subsumed_by(child, parent):
        raise ValueError(f"{tuple(child)!r} is not subsumed by {tuple(parent)!r}")
    return tuple(p if c is NULL else c for c, p in zip(child, parent))
