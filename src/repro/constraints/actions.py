"""Referential actions of the SQL standard.

"Based on the SQL standard, CASCADE, SET NULL, SET DEFAULT, RESTRICT and
NO ACTION are available referential actions" (paper, §3).  The paper's
experiments uniformly use SET NULL (§6.1); all five are implemented.
"""

from __future__ import annotations

from enum import Enum


class ReferentialAction(str, Enum):
    """What happens to children when their parent is deleted/updated."""

    NO_ACTION = "no_action"
    RESTRICT = "restrict"
    CASCADE = "cascade"
    SET_NULL = "set_null"
    SET_DEFAULT = "set_default"

    @property
    def rejects(self) -> bool:
        """True for the actions that veto the parent mutation."""
        return self in (ReferentialAction.NO_ACTION, ReferentialAction.RESTRICT)

    def sql(self) -> str:
        return self.name.replace("_", " ")
