"""Candidate keys and primary keys: entity integrity.

A candidate key requires that no two rows agree on all key columns with
total values (SQL uniqueness ignores keys containing NULL).  A primary
key additionally requires all its columns to be NOT NULL — the kind of
referenced key the paper targets ("the referenced key is commonly the
primary key, or a candidate key where all columns are NOT NULL").
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from ..errors import KeyViolation, SchemaError
from ..nulls import NULL
from ..query.predicate import Predicate, equalities

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.database import Database


class CandidateKey:
    """A uniqueness constraint over an ordered set of columns."""

    def __init__(self, table: str, columns: Sequence[str], name: str | None = None):
        if not columns:
            raise SchemaError("a key needs at least one column")
        if len(set(columns)) != len(columns):
            raise SchemaError(f"key lists a column twice: {columns}")
        self.table = table
        self.columns: tuple[str, ...] = tuple(columns)
        self.name = name or f"key_{table}_{'_'.join(columns)}"
        self._positions: tuple[int, ...] | None = None

    @property
    def requires_not_null(self) -> bool:
        return False

    def attach(self, db: "Database") -> None:
        """Validate against the catalog and cache column positions."""
        table = db.table(self.table)
        self._positions = table.schema.positions(self.columns)
        if self.requires_not_null:
            for column in self.columns:
                if table.schema.column(column).nullable:
                    raise SchemaError(
                        f"primary key column {column!r} of {self.table!r} "
                        "must be NOT NULL"
                    )

    def key_values(self, row: Sequence[Any]) -> tuple[Any, ...]:
        assert self._positions is not None, "key not attached to a database"
        return tuple(row[p] for p in self._positions)

    def match_predicate(self, values: Sequence[Any]) -> Predicate:
        return equalities(self.columns, values)

    def check_insert(
        self, db: "Database", row: Sequence[Any], ignore_rid: int | None = None
    ) -> None:
        """Raise :class:`KeyViolation` if *row* would duplicate a key.

        ``ignore_rid`` excludes one existing row (the UPDATE self-match).
        Keys containing NULL never collide, per SQL.
        """
        values = self.key_values(row)
        if any(v is NULL for v in values):
            if self.requires_not_null:
                raise KeyViolation(
                    f"{self.name}: NULL in primary key columns {self.columns}"
                )
            return
        from ..query import executor

        table = db.table(self.table)
        predicate = self.match_predicate(values)
        for rid, __ in executor.iter_matching(table, predicate):
            if ignore_rid is not None and rid == ignore_rid:
                continue
            raise KeyViolation(
                f"{self.name}: duplicate key value {values!r} on {self.table}"
            )

    def describe(self) -> str:
        kind = "PRIMARY KEY" if self.requires_not_null else "UNIQUE"
        return f"{self.name}: {kind} {self.table}({', '.join(self.columns)})"


class PrimaryKey(CandidateKey):
    """A candidate key whose columns must all be NOT NULL."""

    def __init__(self, table: str, columns: Sequence[str], name: str | None = None):
        super().__init__(table, columns, name or f"pk_{table}")

    @property
    def requires_not_null(self) -> bool:
        return True
