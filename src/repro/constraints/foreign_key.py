"""Foreign keys with the SQL MATCH semantics of the paper.

A referential integrity constraint ``CS[f1..fn] ⊆ PS[k1..kn]`` relates a
*child* (referencing) table to a *parent* (referenced) table (§3):

* **MATCH SIMPLE** — a child tuple with any NULL foreign-key component
  satisfies the constraint by default; total foreign-key values must be
  matched exactly by some parent key.
* **MATCH PARTIAL** — every child tuple must be *subsumed* by some parent
  key: each non-null component must match, whatever the null state.
* **MATCH FULL** — the foreign key must be entirely NULL or entirely
  total (and matched).

Enforcement is configured per constraint: ``NATIVE`` (the built-in check
in the DML layer, the "simple semantics" baseline of the experiments),
``TRIGGER`` (the paper's approach for partial semantics — triggers
installed by :mod:`repro.triggers.partial_ri`), or ``NONE`` (declared but
unenforced, for loading and for the integrity checker).
"""

from __future__ import annotations

from collections.abc import Sequence
from enum import Enum
from typing import TYPE_CHECKING, Any

from ..errors import SchemaError
from ..nulls import NULL, is_total
from ..query.predicate import Predicate, equalities
from .actions import ReferentialAction

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.database import Database


class MatchSemantics(str, Enum):
    """The SQL MATCH clause variants (§3)."""

    SIMPLE = "simple"
    PARTIAL = "partial"
    FULL = "full"


class EnforcementMode(str, Enum):
    """How a declared foreign key is enforced at runtime."""

    NATIVE = "native"
    TRIGGER = "trigger"
    NONE = "none"


class ForeignKey:
    """One referential integrity constraint between two tables."""

    def __init__(
        self,
        name: str,
        child_table: str,
        fk_columns: Sequence[str],
        parent_table: str,
        key_columns: Sequence[str],
        match: MatchSemantics = MatchSemantics.SIMPLE,
        on_delete: ReferentialAction = ReferentialAction.SET_NULL,
        on_update: ReferentialAction = ReferentialAction.SET_NULL,
        enforcement: EnforcementMode = EnforcementMode.NATIVE,
    ) -> None:
        if len(fk_columns) != len(key_columns):
            raise SchemaError(
                f"foreign key {name!r}: {len(fk_columns)} child columns vs "
                f"{len(key_columns)} parent columns"
            )
        if not fk_columns:
            raise SchemaError(f"foreign key {name!r} needs >= 1 column")
        if len(set(fk_columns)) != len(fk_columns):
            raise SchemaError(f"foreign key {name!r} repeats a child column")
        if len(set(key_columns)) != len(key_columns):
            raise SchemaError(f"foreign key {name!r} repeats a parent column")
        self.name = name
        self.child_table = child_table
        self.fk_columns: tuple[str, ...] = tuple(fk_columns)
        self.parent_table = parent_table
        self.key_columns: tuple[str, ...] = tuple(key_columns)
        self.match = match
        self.on_delete = on_delete
        self.on_update = on_update
        self.enforcement = enforcement
        self._fk_positions: tuple[int, ...] | None = None
        self._key_positions: tuple[int, ...] | None = None

    # ------------------------------------------------------------------

    @property
    def n_columns(self) -> int:
        return len(self.fk_columns)

    def validate_against(self, db: "Database") -> None:
        """Check both tables/columns exist; cache positions."""
        child = db.table(self.child_table)
        parent = db.table(self.parent_table)
        self._fk_positions = child.schema.positions(self.fk_columns)
        self._key_positions = parent.schema.positions(self.key_columns)
        for f_col, k_col in zip(self.fk_columns, self.key_columns):
            f_type = child.schema.column(f_col).dtype
            k_type = parent.schema.column(k_col).dtype
            if f_type != k_type:
                raise SchemaError(
                    f"foreign key {self.name!r}: domain mismatch "
                    f"{self.child_table}.{f_col} ({f_type.value}) vs "
                    f"{self.parent_table}.{k_col} ({k_type.value})"
                )

    # ------------------------------------------------------------------
    # Row projections

    def child_values(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """The foreign-key components of a child row."""
        assert self._fk_positions is not None, f"{self.name!r} not validated"
        return tuple(row[p] for p in self._fk_positions)

    def parent_values(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """The referenced-key components of a parent row."""
        assert self._key_positions is not None, f"{self.name!r} not validated"
        return tuple(row[p] for p in self._key_positions)

    @property
    def fk_positions(self) -> tuple[int, ...]:
        assert self._fk_positions is not None, f"{self.name!r} not validated"
        return self._fk_positions

    @property
    def key_positions(self) -> tuple[int, ...]:
        assert self._key_positions is not None, f"{self.name!r} not validated"
        return self._key_positions

    # ------------------------------------------------------------------
    # Predicates used by enforcement

    def parent_match_predicate(self, child_fk: Sequence[Any]) -> Predicate:
        """Parent rows whose key matches the *total* components of
        ``child_fk`` (the subsumption probe of partial semantics)."""
        columns = [
            k for k, v in zip(self.key_columns, child_fk) if v is not NULL
        ]
        values = [v for v in child_fk if v is not NULL]
        return equalities(columns, values)

    def child_state_predicate(self, parent_key: Sequence[Any], null_state: Sequence[int]) -> Predicate:
        """Child rows in the given null *state* referencing ``parent_key``.

        ``null_state`` lists the 0-based FK positions that must be NULL;
        the remaining positions must equal the parent's key values.
        """
        values = [
            NULL if i in null_state else parent_key[i]
            for i in range(self.n_columns)
        ]
        return equalities(self.fk_columns, values)

    def exact_child_predicate(self, parent_key: Sequence[Any]) -> Predicate:
        """Child rows whose FK totally equals ``parent_key``."""
        return equalities(self.fk_columns, parent_key)

    # ------------------------------------------------------------------
    # Satisfaction tests (value level, no database access)

    def row_satisfiable_without_lookup(self, child_fk: Sequence[Any]) -> bool:
        """True when the child value needs no parent search at all.

        SIMPLE: any NULL component. FULL: all NULL. PARTIAL: all NULL
        (an all-null child is subsumed by every parent, but the SQL
        standard still deems it satisfied even on an empty parent table —
        we follow the weaker reading used by the paper's triggers, which
        skip fully-null foreign keys).
        """
        if self.match is MatchSemantics.SIMPLE:
            return not is_total(child_fk)
        if self.match is MatchSemantics.FULL:
            return all(v is NULL for v in child_fk)
        return all(v is NULL for v in child_fk)

    def row_violates_shape(self, child_fk: Sequence[Any]) -> bool:
        """MATCH FULL's shape rule: partially-null FKs are invalid."""
        if self.match is not MatchSemantics.FULL:
            return False
        nulls = sum(1 for v in child_fk if v is NULL)
        return 0 < nulls < len(child_fk)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.child_table}[{', '.join(self.fk_columns)}] ⊆ "
            f"{self.parent_table}[{', '.join(self.key_columns)}] "
            f"MATCH {self.match.value.upper()} "
            f"ON DELETE {self.on_delete.sql()} "
            f"({self.enforcement.value})"
        )
