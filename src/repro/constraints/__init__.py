"""Integrity constraints: keys, foreign keys, actions, bulk checking."""

from .actions import ReferentialAction
from .checker import (
    Violation,
    check_candidate_key,
    check_database,
    check_foreign_key,
    satisfies_partial_semantics,
)
from .foreign_key import EnforcementMode, ForeignKey, MatchSemantics
from .keys import CandidateKey, PrimaryKey

__all__ = [
    "ReferentialAction",
    "Violation",
    "check_candidate_key",
    "check_database",
    "check_foreign_key",
    "satisfies_partial_semantics",
    "EnforcementMode",
    "ForeignKey",
    "MatchSemantics",
    "CandidateKey",
    "PrimaryKey",
]
