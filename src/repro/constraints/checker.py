"""Whole-database integrity validation.

The DML layer enforces constraints incrementally; this module checks a
*given* database state from scratch.  It is used by tests (to prove that
incremental enforcement and bulk validation agree), by the workload
generators (to certify generated data), and by users after bulk loads
with enforcement disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..nulls import NULL, is_subsumed_by, is_total
from ..query import executor
from ..storage.database import Database
from .foreign_key import ForeignKey, MatchSemantics
from .keys import CandidateKey


@dataclass(frozen=True)
class Violation:
    """One detected integrity violation."""

    constraint: str
    table: str
    rid: int
    row: tuple[Any, ...]
    reason: str

    def __str__(self) -> str:
        return f"{self.constraint} on {self.table} rid={self.rid}: {self.reason}"


def check_candidate_key(db: Database, key: CandidateKey) -> list[Violation]:
    """Find rows duplicating a total key value."""
    table = db.table(key.table)
    seen: dict[tuple[Any, ...], int] = {}
    violations: list[Violation] = []
    for rid, row in table.scan():
        values = key.key_values(row)
        if any(v is NULL for v in values):
            if key.requires_not_null:
                violations.append(
                    Violation(key.name, key.table, rid, row, "NULL in primary key")
                )
            continue
        if values in seen:
            violations.append(
                Violation(
                    key.name, key.table, rid, row,
                    f"duplicate key {values!r} (first at rid {seen[values]})",
                )
            )
        else:
            seen[values] = rid
    return violations


def check_foreign_key(db: Database, fk: ForeignKey) -> list[Violation]:
    """Find child rows violating *fk* under its MATCH semantics."""
    child = db.table(fk.child_table)
    violations: list[Violation] = []
    for rid, row in child.scan():
        child_fk = fk.child_values(row)
        reason = _violation_reason(db, fk, child_fk)
        if reason is not None:
            violations.append(Violation(fk.name, fk.child_table, rid, row, reason))
    return violations


def _violation_reason(
    db: Database, fk: ForeignKey, child_fk: tuple[Any, ...]
) -> str | None:
    if fk.row_violates_shape(child_fk):
        return f"MATCH FULL forbids partially-null value {child_fk!r}"
    if fk.row_satisfiable_without_lookup(child_fk):
        return None
    if fk.match is MatchSemantics.SIMPLE and not is_total(child_fk):
        return None
    predicate = fk.parent_match_predicate(child_fk)
    if executor.exists(db, fk.parent_table, predicate):
        return None
    kind = "matching" if is_total(child_fk) else "subsuming"
    return f"no {kind} parent for {child_fk!r}"


def check_database(db: Database) -> list[Violation]:
    """Validate every declared key and foreign key of *db*."""
    violations: list[Violation] = []
    for keys in db.candidate_keys.values():
        for key in keys:
            violations.extend(check_candidate_key(db, key))
    for fk in db.foreign_keys:
        violations.extend(check_foreign_key(db, fk))
    return violations


def satisfies_partial_semantics(db: Database, fk: ForeignKey) -> bool:
    """Direct definition check of partial semantics (paper §3).

    Independent implementation (pure subsumption scan, no planner) used
    by property tests as the oracle for the enforcement machinery.
    """
    parent_keys = [
        fk.parent_values(row) for __, row in db.table(fk.parent_table).scan()
    ]
    for __, row in db.table(fk.child_table).scan():
        child_fk = fk.child_values(row)
        if all(v is NULL for v in child_fk):
            continue
        if not any(is_subsumed_by(child_fk, pk) for pk in parent_keys):
            return False
    return True
