"""Static AST lint enforcing the engine's repository invariants.

Several of the engine's correctness promises live in comments: "every
``faults.fire(...)`` call site must be registered in ``KNOWN_POINTS``",
"only the WAL-logging DML layer mutates the heap", "engine code never
reads wall-clock time".  Comments do not fail CI; these rules do.  Each
rule has a stable code (``RPR001``…) so suppressions and fixtures stay
meaningful as messages get reworded, and each is fixture-tested against
a seeded bad snippet in ``tests/lint_fixtures/``.

Run it as ``python -m repro lint`` (the CI ``analysis`` job does), or
programmatically through :func:`run` / :func:`lint_paths`.

The rules:

``RPR001`` fault-point registry consistency — every ``fire("...")``
    string literal in the engine must be a member of
    :data:`repro.testing.faults.KNOWN_POINTS`, and (repo-level) every
    registered point must have at least one call site: a registry entry
    with no crossing is dead configuration, a crossing with no entry is
    invisible to the crash-sweep harnesses.
``RPR002`` lock-table encapsulation — ``LockManager``'s ``_table`` /
    ``_held`` / ``_cond`` / ``_mu`` and the heap's ``_rows`` may be
    touched only by their owning modules; everyone else goes through the
    public API so the strict-2PL and WAL invariants stay in one place.
``RPR003`` determinism — no ``time.time()`` and no ``random`` module in
    engine code outside ``bench``/``testing``/``workloads``: wall-clock
    and unseeded randomness make enforcement runs unreproducible
    (``time.monotonic()`` for intervals is fine).
``RPR004`` error hygiene — no bare ``except:`` anywhere, and no
    ``except ReproError: pass`` (an enforcement error silently swallowed
    is a corrupted database later).
``RPR005`` WAL-before-mutation — the physical mutators
    (``insert_row`` / ``delete_rid`` / ``update_rid`` / ``restore_row``)
    may be called only from the modules that pair them with undo/WAL
    logging (``query.dml``, ``query.transaction``), from the storage and
    index layers themselves, or from the bulk loaders in ``workloads``
    (which run before a WAL is attached, by design).
``RPR006`` latch discipline — ``LockManager.set_solo`` may be called
    only from ``concurrency`` modules (the session manager holds the
    statement latch across it; arbitrary callers cannot).
``RPR007`` guarded wire I/O — every raw socket ``send``/``sendall``/
    ``recv``/``accept`` in ``repro.server`` must sit in a function that
    also crosses a fault point (``fire(...)``) or sets an explicit
    ``settimeout``: unguarded wire I/O is invisible to the fault
    injection harness and can stall a worker thread forever.
``RPR008`` lock-free snapshot reads — snapshot-read code paths (any
    function whose name contains ``snapshot``, and everything in
    ``repro.storage.versions``) must not acquire S or IS locks through
    the lock manager: MVCC readers promise to never wait on writers,
    and a single read lock reintroduces the reader-writer convoy the
    version store exists to remove.  The runtime twin of this rule is
    :func:`repro.analysis.lockdep.snapshot_read_scope`.
``RPR009`` decision-before-ack — in ``repro.sharding`` any function that
    acknowledges a cross-shard commit to the client (``ack_committed``)
    or pushes a commit decision to a participant (``send_commit_decide``)
    must also write or consult the durable decision log
    (``record_decision`` / ``logged_decision``) in the same function:
    under presumed abort, a commit acked without a fsynced decision
    record is silently rolled back by recovery after a coordinator
    crash — an acked-commit loss the chaos judge exists to catch.
``RPR010`` non-blocking coroutines — inside ``async def`` functions in
    ``repro.server`` no ``time.sleep()`` and no blocking socket calls
    (``recv``/``send``/``sendall``/``accept``/``connect``): one blocking
    call inside a coroutine stalls the event loop and with it **every**
    pipelined connection, not just the offender's.  Blocking work
    belongs on the executor (``run_in_executor``); awaited stream calls
    (``await reader.read(...)``) are exempt.
"""

from __future__ import annotations

import ast
import sys
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

#: Repository-relative module prefixes, e.g. "repro.query.dml".
ModuleName = str


@dataclass(frozen=True)
class LintViolation:
    """One finding: a rule code anchored to a file and line."""

    code: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    """A table entry: stable code, summary, and the per-module checker.

    ``check(module_name, tree, source_lines)`` yields violations with
    paths left blank; the driver fills them in.
    """

    code: str
    summary: str
    check: Callable[[ModuleName, ast.Module], Iterator[tuple[int, str]]]


def _module_name(root: Path, path: Path) -> ModuleName:
    rel = path.relative_to(root.parent)
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _in(module: ModuleName, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


# ----------------------------------------------------------------------
# RPR001 — fault-point registry consistency


def _known_points() -> tuple[str, ...]:
    from ..testing.faults import KNOWN_POINTS

    return KNOWN_POINTS


def _fire_literals(tree: ast.Module) -> Iterator[tuple[int, str]]:
    """Every string literal passed to a call of ``fire`` / ``faults.fire``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "fire" or not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield node.lineno, arg.value


def _check_fire_registered(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    known = set(_known_points())
    for line, literal in _fire_literals(tree):
        if literal not in known:
            yield (
                line,
                f"fault point {literal!r} is fired here but not registered "
                "in repro.testing.faults.KNOWN_POINTS",
            )


# ----------------------------------------------------------------------
# RPR002 — lock-table / heap encapsulation

#: attribute name -> module prefixes allowed to touch it.
_PRIVATE_ATTRS: dict[str, tuple[str, ...]] = {
    "_table": ("repro.concurrency.locks",),
    "_held": ("repro.concurrency.locks",),
    "_cond": ("repro.concurrency.locks",),
    "_rows": ("repro.storage.heap",),
}


def _check_private_attrs(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        owners = _PRIVATE_ATTRS.get(node.attr)
        if owners is None or _in(module, owners):
            continue
        if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
            continue  # a different class's own private state
        yield (
            node.lineno,
            f"direct access to internal attribute {node.attr!r}; only "
            f"{', '.join(owners)} may touch it — use the public API",
        )


# ----------------------------------------------------------------------
# RPR003 — determinism in engine modules

_NONDETERMINISM_EXEMPT = (
    "repro.bench",
    "repro.testing",
    "repro.workloads",
)


def _check_determinism(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    if _in(module, _NONDETERMINISM_EXEMPT):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield (
                        node.lineno,
                        "engine modules must not use `random` (unseeded "
                        "randomness breaks run reproducibility); only "
                        "bench/testing/workloads may",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield (
                    node.lineno,
                    "engine modules must not use `random`; only "
                    "bench/testing/workloads may",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield (
                    node.lineno,
                    "engine modules must not read wall-clock time.time(); "
                    "use time.monotonic() for intervals",
                )


# ----------------------------------------------------------------------
# RPR004 — error hygiene


def _check_error_hygiene(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield (
                node.lineno,
                "bare `except:` also catches SimulatedCrash and "
                "KeyboardInterrupt; name the exception types",
            )
            continue
        if _handler_names_repro_error(node.type) and _body_is_silent(node.body):
            yield (
                node.lineno,
                "a ReproError is silently swallowed here; handle it, "
                "re-raise, or record why discarding is safe",
            )


_REPRO_ERROR_NAMES = {
    "ReproError",
    "IntegrityError",
    "ReferentialIntegrityViolation",
    "KeyViolation",
    "RestrictViolation",
    "ConcurrencyError",
}


def _handler_names_repro_error(expr: ast.expr) -> bool:
    names: list[ast.expr] = list(expr.elts) if isinstance(expr, ast.Tuple) else [expr]
    for item in names:
        if isinstance(item, ast.Attribute) and item.attr in _REPRO_ERROR_NAMES:
            return True
        if isinstance(item, ast.Name) and item.id in _REPRO_ERROR_NAMES:
            return True
    return False


def _body_is_silent(body: Sequence[ast.stmt]) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
        for stmt in body
    )


# ----------------------------------------------------------------------
# RPR005 — WAL-before-mutation allowlist

_MUTATORS = {"insert_row", "delete_rid", "update_rid", "restore_row"}

#: Modules that may call the physical mutators directly: the undo/WAL
#: logging layers (``query.dml`` and the vectorized ``core.batch``, which
#: pairs every mutation with ``dml._log_undo``), the storage/index layers
#: themselves, and the bulk loaders (which run before a WAL is attached,
#: by design).
_MUTATION_ALLOWED = (
    "repro.query.dml",
    "repro.query.transaction",
    "repro.core.batch",
    "repro.storage",
    "repro.indexes",
    "repro.workloads",
)


def _check_wal_before_mutation(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    if _in(module, _MUTATION_ALLOWED):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            continue
        base = func.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls", "dml"):
            # self/cls: a layer's own method; dml: the sanctioned
            # WAL-logging entry points (dml.update_rid etc.).
            continue
        yield (
            node.lineno,
            f"physical mutator .{func.attr}() called outside the WAL "
            "allowlist; route the write through repro.query.dml so the "
            "undo/WAL record is paired with the mutation",
        )


# ----------------------------------------------------------------------
# RPR006 — set_solo latch discipline

_SET_SOLO_ALLOWED = ("repro.concurrency",)


def _check_set_solo(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    if _in(module, _SET_SOLO_ALLOWED):
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "set_solo"
        ):
            yield (
                node.lineno,
                "LockManager.set_solo() flips the fast path and must run "
                "under the statement latch; only repro.concurrency (the "
                "session manager) may call it",
            )


# ----------------------------------------------------------------------
# RPR007 — guarded wire I/O in the serving layer

_SOCKET_CALLS = {"recv", "send", "sendall", "accept"}

_SOCKET_GUARDED = ("repro.server", "repro.sharding")


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Nodes of *func* excluding nested function/lambda bodies, so each
    socket call is judged against its innermost enclosing function."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_socket_guards(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    if not _in(module, _SOCKET_GUARDED):
        return
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        guarded = False
        socket_calls: list[tuple[int, str]] = []
        # A directly-awaited call is an async stream API, not a raw
        # socket — timeouts for those are wait_for's job (RPR010 covers
        # the blocking-in-coroutine direction).
        awaited = {
            id(node.value)
            for node in _own_nodes(func)
            if isinstance(node, ast.Await)
        }
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            callee = node.func
            name = (
                callee.id if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute)
                else None
            )
            if name == "fire" or name == "settimeout":
                guarded = True
            elif name in _SOCKET_CALLS:
                socket_calls.append((node.lineno, name))
        if not guarded:
            for line, name in sorted(socket_calls):
                yield (
                    line,
                    f"raw socket .{name}() with no fault point and no "
                    "explicit timeout in this function; add a "
                    "fire('wire.*') crossing or a settimeout() so fault "
                    "injection sees it and a stalled peer cannot pin "
                    "the thread",
                )


# ----------------------------------------------------------------------
# RPR009 — durable decision record dominates the cross-shard commit ack

#: Calls that externalise a cross-shard commit (to the client or to a
#: participant).  Once one of these runs, presumed abort makes the
#: decision log the only thing standing between a crash and a lost ack.
_DECISION_ACKS = {"ack_committed", "send_commit_decide"}

#: Calls that write or consult the durable decision log.
_DECISION_GUARDS = {"record_decision", "logged_decision"}

_DECISION_SCOPED = ("repro.sharding",)


def _check_decision_before_ack(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    if not _in(module, _DECISION_SCOPED):
        return
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name in _DECISION_ACKS:
            continue  # the primitives themselves, not their callers
        guarded = False
        acks: list[tuple[int, str]] = []
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = (
                callee.id if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute)
                else None
            )
            if name in _DECISION_GUARDS:
                guarded = True
            elif name in _DECISION_ACKS:
                acks.append((node.lineno, name))
        if not guarded:
            for line, name in sorted(acks):
                yield (
                    line,
                    f"{name}() without record_decision()/logged_decision() "
                    "in the same function; under presumed abort an acked "
                    "commit with no durable decision record is rolled back "
                    "by recovery after a coordinator crash",
                )


# ----------------------------------------------------------------------
# RPR010 — coroutines in the serving layer never block the event loop

#: Socket methods that park the calling thread — fatal inside a
#: coroutine, where the calling thread IS the event loop.
_BLOCKING_SOCKET_CALLS = _SOCKET_CALLS | {"connect"}

_ASYNC_SCOPED = ("repro.server",)


def _check_async_blocking(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    if not _in(module, _ASYNC_SCOPED):
        return
    for func in ast.walk(tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        # A call that is directly awaited is an async API whatever its
        # name (``await stream.send(...)``) — only sync calls block.
        awaited = {
            id(node.value)
            for node in _own_nodes(func)
            if isinstance(node, ast.Await)
        }
        found: list[tuple[int, str]] = []
        for node in _own_nodes(func):
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                continue
            if (
                callee.attr == "sleep"
                and isinstance(callee.value, ast.Name)
                and callee.value.id == "time"
            ):
                found.append((
                    node.lineno,
                    f"time.sleep() inside coroutine {func.name!r} stalls "
                    "the event loop and every pipelined connection on it; "
                    "use asyncio.sleep() or move the wait to the executor",
                ))
            elif callee.attr in _BLOCKING_SOCKET_CALLS:
                found.append((
                    node.lineno,
                    f"blocking socket .{callee.attr}() inside coroutine "
                    f"{func.name!r}; the event loop thread must never "
                    "block — use the asyncio stream API or "
                    "run_in_executor",
                ))
        yield from sorted(found)


# ----------------------------------------------------------------------
# RPR008 — snapshot-read paths stay lock-free

#: Modules that are snapshot-read machinery in their entirety.
_SNAPSHOT_MODULES = ("repro.storage.versions",)

#: Read lock modes a snapshot path must never request.
_READ_MODES = {"S", "IS"}


def _is_read_lock_mode(arg: ast.expr) -> bool:
    return (
        isinstance(arg, ast.Attribute)
        and arg.attr in _READ_MODES
        and isinstance(arg.value, ast.Name)
        and arg.value.id == "LockMode"
    )


def _check_snapshot_lock_free(
    module: ModuleName, tree: ast.Module
) -> Iterator[tuple[int, str]]:
    whole_module = _in(module, _SNAPSHOT_MODULES)
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not (whole_module or "snapshot" in func.name):
            continue
        for node in _own_nodes(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and any(_is_read_lock_mode(a) for a in node.args)
            ):
                mode = next(
                    a.attr for a in node.args  # type: ignore[union-attr]
                    if _is_read_lock_mode(a)
                )
                yield (
                    node.lineno,
                    f"snapshot-read path {func.name!r} acquires a "
                    f"LockMode.{mode} lock; MVCC snapshot reads must be "
                    "lock-free — read through a ReadView at the snapshot "
                    "LSN instead (runtime twin: lockdep.snapshot_read_scope)",
                )


# ----------------------------------------------------------------------
# The rule table and the driver

RULES: tuple[Rule, ...] = (
    Rule("RPR001", "fire() literals must be registered fault points",
         _check_fire_registered),
    Rule("RPR002", "lock-table/heap internals are private to their module",
         _check_private_attrs),
    Rule("RPR003", "no wall-clock time or random in engine modules",
         _check_determinism),
    Rule("RPR004", "no bare except / silently swallowed ReproError",
         _check_error_hygiene),
    Rule("RPR005", "physical mutators only via the WAL-logging layer",
         _check_wal_before_mutation),
    Rule("RPR006", "set_solo only from the latched session manager",
         _check_set_solo),
    Rule("RPR007", "server socket I/O guarded by fault point or timeout",
         _check_socket_guards),
    Rule("RPR008", "snapshot-read paths never take S/IS locks",
         _check_snapshot_lock_free),
    Rule("RPR009", "cross-shard commit acks dominated by decision record",
         _check_decision_before_ack),
    Rule("RPR010", "server coroutines never block the event loop",
         _check_async_blocking),
)


def default_root() -> Path:
    """The installed ``repro`` package directory (``src/repro``)."""
    return Path(__file__).resolve().parents[1]


def lint_source(
    source: str,
    module: ModuleName,
    path: str = "<string>",
    rules: Sequence[Rule] = RULES,
) -> list[LintViolation]:
    """Lint one module's source text (the unit the fixtures exercise)."""
    tree = ast.parse(source, filename=path)
    out: list[LintViolation] = []
    for rule in rules:
        for line, message in rule.check(module, tree):
            out.append(LintViolation(rule.code, path, line, message))
    return out


def iter_modules(root: Path) -> Iterator[tuple[ModuleName, Path]]:
    for path in sorted(root.rglob("*.py")):
        yield _module_name(root, path), path


def lint_paths(
    root: Path | None = None, rules: Sequence[Rule] = RULES
) -> list[LintViolation]:
    """Lint every module under *root* (default: the installed package),
    then apply the repo-level RPR001 completeness check."""
    root = root or default_root()
    out: list[LintViolation] = []
    fired: set[str] = set()
    for module, path in iter_modules(root):
        source = path.read_text()
        out.extend(lint_source(source, module, str(path), rules))
        fired.update(literal for __, literal in _fire_literals(ast.parse(source)))
    # Registry completeness is a property of the real engine tree, not of
    # arbitrary lint targets (fixture snippets fire nothing).
    if (root / "testing" / "faults.py").exists() and any(
        rule.code == "RPR001" for rule in rules
    ):
        for point in _known_points():
            if point not in fired:
                out.append(
                    LintViolation(
                        "RPR001",
                        str(root / "testing" / "faults.py"),
                        1,
                        f"fault point {point!r} is registered in "
                        "KNOWN_POINTS but fired nowhere in the engine",
                    )
                )
    return sorted(out, key=lambda v: (v.path, v.line, v.code))


def fired_points(root: Path | None = None) -> set[str]:
    """Every ``fire("...")`` literal under *root* (test cross-check API)."""
    root = root or default_root()
    fired: set[str] = set()
    for __, path in iter_modules(root):
        fired.update(
            literal for __, literal in _fire_literals(ast.parse(path.read_text()))
        )
    return fired


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``python -m repro lint [--list] [PATH ...]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--list" in argv:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0
    roots = [Path(arg) for arg in argv if not arg.startswith("-")]
    violations: list[LintViolation] = []
    for root in roots or [default_root()]:
        violations.extend(lint_paths(root))
    for violation in violations:
        print(violation.render())
    checked = ", ".join(str(r) for r in (roots or [default_root()]))
    print(f"repro lint: {len(RULES)} rules over {checked}: "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0
