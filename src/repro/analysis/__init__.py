"""Machine-checked correctness tooling for the enforcement engine.

Two engines, both wired into CI's ``analysis`` job:

* :mod:`repro.analysis.lockdep` — a runtime concurrency sanitizer: an
  observer on the strict-2PL :class:`~repro.concurrency.locks.LockManager`
  that accumulates a lock-order graph across the whole run and reports
  *potential* deadlock cycles without needing them to fire, plus 2PL /
  statement-latch / witness-lock discipline assertions.  Armed with
  ``REPRO_SANITIZE=1`` or ``LockManager(sanitize=True)``; free when off.
* :mod:`repro.analysis.lint` — a static AST lint (``python -m repro
  lint``) with table-driven rules and stable ``RPR00x`` codes enforcing
  the invariants the code comments otherwise only promise (fault-point
  registry consistency, lock-table encapsulation, determinism, error
  hygiene, WAL-before-mutation, latch discipline).
"""

from . import lint, lockdep

__all__ = ["lint", "lockdep"]
