"""Runtime lock-order sanitizer ("lockdep") for the strict-2PL engine.

Deadlocks are the one concurrency bug class that example-based tests are
structurally bad at finding: the buggy interleaving has to *fire* during
the run.  This module removes that requirement.  An observer hooked into
:meth:`repro.concurrency.locks.LockManager.acquire` / ``release_all``
records, per transaction, the order in which **resource classes** are
locked, accumulates those orders into a per-manager lock-order graph for
the whole run, and reports every cycle whose edges can actually block as
a *potential* deadlock — even when the scheduler never produced the
deadly interleaving.  (This is the database-engine analogue of the Linux
kernel's lockdep.)

Granularity — nodes of the graph (DESIGN.md §5f):

* a **table resource** ``("table", name)`` classifies to itself;
* a **key resource** ``("key", table, columns, values)`` classifies to
  ``("key", table, columns)`` — the *key class*, dropping the values.
  Two different values of the same key class are the *same* node:
  value-crossing AB-BA orders within one class (two updates swapping the
  same pair of key values) are data-dependent, unavoidable under
  key-value locking, and already resolved by the runtime waits-for
  detector, so same-class order edges are deliberately **not** recorded.

Edges carry the ``(held mode, acquired mode)`` pairs observed and come
in two kinds:

* **order** edges ``A -> B``: some transaction held class ``A`` while
  its first lock on class ``B`` was *granted*.  Recording at grant time
  (not request time) makes runtime-detected deadlocks self-suppressing:
  the victim aborts before its blocking grant, so its half of the cycle
  never enters the graph, and only orders that each fully materialised
  remain — exactly the "it never fired" cases lockdep exists for.
* **upgrade** edges ``A -> A``: a transaction strengthened its mode on a
  resource it already held (classically S→X).  These need their own
  kind because they are dangerous *without any second class*: two
  transactions that both hold S and both request X block each other.
  A single transaction upgrading is recorded but only *escalated* to a
  violation when two distinct transactions perform mutually-blocking
  upgrades on the same class (see :meth:`LockOrderGraph.upgrade_risks`).

A cycle is reported only if it can block at **every** node: for each
class on the cycle there must be an observed acquired-mode entering it
that conflicts with an observed held-mode leaving it.  This filters the
ubiquitous benign cycles through IX table locks (IX is self-compatible,
so ``parent-delete: table P → table C`` versus ``child-insert: table C →
key P`` cannot deadlock at the table nodes).

Besides ordering, the observer asserts four pieces of discipline the
code comments otherwise only promise:

* **strict 2PL** — no acquisition after the transaction's release
  (``release_all`` is the only release, so any later acquire under the
  same transaction id is a phase violation);
* **latch discipline** — solo-mode flips and the grant materialisation
  inside :meth:`LockManager.set_solo` happen under the
  :class:`~repro.concurrency.locks.StatementLatch` whenever the manager
  has one (the session manager's ``_refresh_solo`` contract);
* **witness pinning** — :func:`repro.concurrency.hooks.verify_parent_exists`
  reports the witness key it adopted, and the observer checks the
  S-lock on exactly that resource is held by the transaction at the end
  of the probe window (and, by strict 2PL, until commit);
* **snapshot reads are lock-free** — MVCC snapshot transactions
  legitimately hold *no* read locks at all: the snapshot read path
  (:meth:`repro.concurrency.session.Session._snapshot_read`) wraps
  itself in :func:`snapshot_read_scope`, and any lock-manager
  acquisition observed inside that scope is a ``snapshot`` violation.
  This is the runtime twin of lint rule RPR008.

Enabling: ``LockManager(sanitize=True)`` or ``REPRO_SANITIZE=1`` in the
environment.  When off (the default), the manager's hot path pays a
single ``self._sanitizer is None`` test per acquisition — the same
compile-to-a-boolean discipline as :mod:`repro.testing.faults`, pinned
by ``tests/test_lockdep.py``'s overhead tests.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Hashable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover
    from ..concurrency.locks import LockManager, LockMode

#: A lock-order graph node: a resource class (values stripped from keys).
ResourceClass = Hashable

#: Environment variable that arms the sanitizer for every LockManager
#: constructed without an explicit ``sanitize=`` argument.
ENV_FLAG = "REPRO_SANITIZE"


def env_enabled() -> bool:
    """Is ``REPRO_SANITIZE`` set to a truthy value?"""
    return os.environ.get(ENV_FLAG, "") not in ("", "0", "false", "no")


# Thread-local marker for the MVCC snapshot-read scope: while set, the
# current thread is executing a lock-free snapshot read and must not
# reach the lock manager at all.
_snapshot_local = threading.local()


@contextmanager
def snapshot_read_scope() -> Iterator[None]:
    """Mark the current thread as inside a lock-free snapshot read.

    The session's snapshot read path enters this scope; any
    :meth:`LockdepObserver.on_acquired` event fired by the same thread
    while inside is reported as a ``snapshot`` violation.  Costs one
    thread-local store — no effect when no sanitizer is attached.
    """
    depth = getattr(_snapshot_local, "depth", 0)
    _snapshot_local.depth = depth + 1
    try:
        yield
    finally:
        _snapshot_local.depth = depth


def in_snapshot_read() -> bool:
    """Is the current thread inside a snapshot-read scope?"""
    return getattr(_snapshot_local, "depth", 0) > 0


def classify(resource: Hashable) -> ResourceClass:
    """Map a lock resource to its graph node (its *resource class*).

    Key resources drop their values — all locks over one key of one
    table share a class; everything else classifies to itself.
    """
    if isinstance(resource, tuple) and len(resource) == 4 and resource[0] == "key":
        return ("key", resource[1], resource[2])
    return resource


def _mode_tables() -> tuple[dict, dict]:
    # Imported lazily: concurrency.locks imports this module's attach()
    # at construction time, so a top-level import would be circular.
    from ..concurrency.locks import _COMBINE, _COMPATIBLE

    return _COMPATIBLE, _COMBINE


# ----------------------------------------------------------------------
# Violations and the report


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding.

    ``kind`` is stable for tests: ``cycle``, ``upgrade``, ``two-phase``,
    ``latch``, ``witness``, or ``snapshot``.
    """

    kind: str
    message: str

    def render(self) -> str:
        return f"[lockdep:{self.kind}] {self.message}"


@dataclass
class LockdepReport:
    """Aggregated findings across every registered observer."""

    violations: list[Violation] = field(default_factory=list)
    observers: int = 0
    edges: int = 0
    acquisitions: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"lockdep: {self.observers} lock manager(s), "
            f"{self.acquisitions} acquisitions, {self.edges} order edge(s), "
            f"{len(self.violations)} violation(s)"
        ]
        lines.extend(v.render() for v in self.violations)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The lock-order graph


@dataclass
class _Edge:
    """Annotation set for one ``src -> dst`` order edge."""

    #: Observed (held mode on src, acquired mode on dst) pairs.
    mode_pairs: set[tuple["LockMode", "LockMode"]] = field(default_factory=set)
    #: One concrete (txn, held resource, acquired resource) example per
    #: mode pair, for actionable reports.
    examples: dict[tuple["LockMode", "LockMode"], tuple] = field(default_factory=dict)


class LockOrderGraph:
    """Directed graph over resource classes, accumulated across a run."""

    def __init__(self) -> None:
        self._edges: dict[ResourceClass, dict[ResourceClass, _Edge]] = {}
        #: class -> {(from_mode, to_mode) -> set of txn ids that upgraded}
        self._upgrades: dict[
            ResourceClass, dict[tuple["LockMode", "LockMode"], set[int]]
        ] = {}

    # -- construction ---------------------------------------------------

    def add_order(
        self,
        src: ResourceClass,
        dst: ResourceClass,
        held_mode: "LockMode",
        acq_mode: "LockMode",
        example: tuple,
    ) -> None:
        if src == dst:
            return  # same-class instance ordering: data-dependent, skipped
        edge = self._edges.setdefault(src, {}).setdefault(dst, _Edge())
        pair = (held_mode, acq_mode)
        if pair not in edge.mode_pairs:
            edge.mode_pairs.add(pair)
            edge.examples[pair] = example

    def add_upgrade(
        self,
        cls: ResourceClass,
        from_mode: "LockMode",
        to_mode: "LockMode",
        txn_id: int,
    ) -> None:
        per_class = self._upgrades.setdefault(cls, {})
        per_class.setdefault((from_mode, to_mode), set()).add(txn_id)

    # -- introspection --------------------------------------------------

    @property
    def edge_count(self) -> int:
        return sum(len(dsts) for dsts in self._edges.values())

    def edges(self) -> dict[ResourceClass, dict[ResourceClass, set]]:
        return {
            src: {dst: set(edge.mode_pairs) for dst, edge in dsts.items()}
            for src, dsts in self._edges.items()
        }

    def upgrades(self) -> dict[ResourceClass, dict[tuple, set[int]]]:
        return {
            cls: {pair: set(txns) for pair, txns in pairs.items()}
            for cls, pairs in self._upgrades.items()
        }

    # -- analysis -------------------------------------------------------

    def cycles(self) -> list[list[ResourceClass]]:
        """Every elementary cycle that can block at each of its nodes.

        A cycle ``c0 -> c1 -> ... -> c0`` is a potential deadlock iff at
        every node some acquired mode entering it (from the in-edge)
        conflicts with some held mode leaving it (from the out-edge) —
        participant *i* requests what participant *i+1* holds.
        """
        compat, _ = _mode_tables()
        found: list[list[ResourceClass]] = []
        seen: set[tuple[ResourceClass, ...]] = set()

        def blocking(cycle: list[ResourceClass]) -> bool:
            n = len(cycle)
            for i in range(n):
                in_edge = self._edges[cycle[i]][cycle[(i + 1) % n]]
                out_edge = self._edges[cycle[(i + 1) % n]][cycle[(i + 2) % n]]
                node_conflicts = any(
                    not compat[(held_out, acq_in)]
                    for (__, acq_in) in in_edge.mode_pairs
                    for (held_out, __) in out_edge.mode_pairs
                )
                if not node_conflicts:
                    return False
            return True

        def canonical(cycle: list[ResourceClass]) -> tuple[ResourceClass, ...]:
            pivot = min(range(len(cycle)), key=lambda i: repr(cycle[i]))
            return tuple(cycle[pivot:] + cycle[:pivot])

        path: list[ResourceClass] = []
        on_path: set[ResourceClass] = set()

        def dfs(node: ResourceClass, root: ResourceClass) -> None:
            path.append(node)
            on_path.add(node)
            for succ in self._edges.get(node, ()):
                if succ == root and len(path) > 1:
                    key = canonical(path)
                    if key not in seen:
                        seen.add(key)
                        if blocking(list(key)):
                            found.append(list(key))
                elif succ not in on_path and repr(succ) > repr(root):
                    # Only explore nodes "after" the root so each cycle
                    # is enumerated from exactly one starting point.
                    dfs(succ, root)
            path.pop()
            on_path.remove(node)

        for start in list(self._edges):
            dfs(start, start)
        return found

    def upgrade_risks(self) -> list[tuple[ResourceClass, tuple, tuple]]:
        """Upgrade pairs on one class that could block each other.

        Two transactions upgrading the same class deadlock when their
        start modes coexist but each target mode conflicts with the
        other's start mode (S→X against S→X is the classic case).  A
        single transaction's upgrade is a latent pattern, not a finding.
        """
        compat, _ = _mode_tables()
        risks = []
        for cls, pairs in self._upgrades.items():
            items = list(pairs.items())
            for i, ((f1, t1), txns1) in enumerate(items):
                for (f2, t2), txns2 in items[i:]:
                    if len(txns1 | txns2) < 2:
                        continue
                    if (
                        compat[(f1, f2)]
                        and not compat[(f2, t1)]
                        and not compat[(f1, t2)]
                    ):
                        risks.append((cls, (f1, t1), (f2, t2)))
        return risks

    def describe_cycle(self, cycle: list[ResourceClass]) -> str:
        n = len(cycle)
        hops = []
        for i in range(n):
            edge = self._edges[cycle[i]][cycle[(i + 1) % n]]
            held, acq = next(iter(edge.mode_pairs))
            hops.append(f"{cycle[i]!r} [{held.name}] -> {cycle[(i + 1) % n]!r} [{acq.name}]")
        return "; ".join(hops)


# ----------------------------------------------------------------------
# The per-manager observer


class LockdepObserver:
    """Shadow state for one :class:`LockManager`, fed by its hooks.

    Thread-safe: the manager calls in from arbitrary session threads
    (including the solo fast path, which bypasses the manager's own
    mutex), so every mutation happens under the observer's private lock.
    """

    def __init__(self, manager: "LockManager | None" = None) -> None:
        self._manager = manager
        self._mu = threading.Lock()
        self.graph = LockOrderGraph()
        self.violations: list[Violation] = []
        self.acquisitions = 0
        #: txn id -> resource -> strongest mode observed held.
        self._held: dict[int, dict[Hashable, "LockMode"]] = {}
        #: txn id -> acquisition order of distinct resource classes.
        self._class_order: dict[int, list[ResourceClass]] = {}
        #: txn id -> strongest mode per class (for edge annotations).
        self._class_mode: dict[int, dict[ResourceClass, "LockMode"]] = {}
        #: Transactions that already went through release_all.
        self._released: set[int] = set()

    # -- events from the lock manager -----------------------------------

    def on_acquired(self, txn_id: int, resource: Hashable, mode: "LockMode") -> None:
        """A grant (fast path or slow path) materialised for *txn_id*."""
        _, combine = _mode_tables()
        with self._mu:
            self.acquisitions += 1
            if in_snapshot_read():
                self._violate(
                    "snapshot",
                    f"transaction {txn_id} acquired {mode.name} on "
                    f"{resource!r} inside a snapshot-read scope; snapshot "
                    "reads must be lock-free (RPR008's runtime twin)",
                )
            if txn_id in self._released:
                self._violate(
                    "two-phase",
                    f"transaction {txn_id} acquired {mode.name} on "
                    f"{resource!r} after releasing its locks "
                    "(strict 2PL forbids a second growing phase)",
                )
            held = self._held.setdefault(txn_id, {})
            cls = classify(resource)
            classes = self._class_order.setdefault(txn_id, [])
            class_mode = self._class_mode.setdefault(txn_id, {})
            prior = held.get(resource)
            combined = mode if prior is None else combine[(prior, mode)]
            held[resource] = combined
            if prior is not None and combined != prior:
                self.graph.add_upgrade(cls, prior, combined, txn_id)
            if cls not in class_mode:
                # First touch of this class: record order edges from
                # everything already held, annotated with current modes.
                for held_cls in classes:
                    self.graph.add_order(
                        held_cls,
                        cls,
                        class_mode[held_cls],
                        mode,
                        (txn_id, held_cls, resource),
                    )
                classes.append(cls)
                class_mode[cls] = combined
            else:
                class_mode[cls] = combine[(class_mode[cls], combined)]

    def on_release_all(self, txn_id: int) -> None:
        with self._mu:
            self._held.pop(txn_id, None)
            self._class_order.pop(txn_id, None)
            self._class_mode.pop(txn_id, None)
            self._released.add(txn_id)

    def on_solo_flip(self, solo: bool, latch_held: bool | None) -> None:
        """``set_solo`` ran; *latch_held* is None for latch-less managers."""
        with self._mu:
            if latch_held is False:
                self._violate(
                    "latch",
                    f"solo-mode flip to {solo} (and its grant "
                    "materialisation) ran without the statement latch; "
                    "a statement could be mid-flight on another thread",
                )

    def on_witness_pinned(self, txn_id: int, resource: Hashable) -> None:
        """The FK probe window closed claiming *resource* as its witness."""
        from ..concurrency.locks import LockMode

        with self._mu:
            mode = self._held.get(txn_id, {}).get(resource)
            if mode is None or LockMode.S not in _covers(mode):
                self._violate(
                    "witness",
                    f"transaction {txn_id} finished its FK probe window "
                    f"without holding the witness S-lock on {resource!r} "
                    f"(held: {mode.name if mode else 'nothing'})",
                )

    # -- reporting ------------------------------------------------------

    def _violate(self, kind: str, message: str) -> None:
        self.violations.append(Violation(kind, message))

    def findings(self) -> list[Violation]:
        """Discipline violations plus graph findings, for this manager."""
        with self._mu:
            out = list(self.violations)
            for cycle in self.graph.cycles():
                out.append(
                    Violation(
                        "cycle",
                        "potential deadlock: lock-order cycle "
                        + self.graph.describe_cycle(cycle),
                    )
                )
            for cls, pair1, pair2 in self.graph.upgrade_risks():
                out.append(
                    Violation(
                        "upgrade",
                        f"potential deadlock: transactions upgrade "
                        f"{cls!r} {pair1[0].name}->{pair1[1].name} and "
                        f"{pair2[0].name}->{pair2[1].name}; the starts "
                        "coexist but each target blocks on the other",
                    )
                )
            return out


def _covers(mode: "LockMode") -> frozenset:
    from ..concurrency.locks import _COVERS

    return _COVERS[mode]


# ----------------------------------------------------------------------
# Global registry: one graph per lock manager, one report per run.

_registry_lock = threading.Lock()
_observers: list[LockdepObserver] = []


def attach(manager: "LockManager | None" = None) -> LockdepObserver:
    """Create and register the observer for one lock manager."""
    observer = LockdepObserver(manager)
    with _registry_lock:
        _observers.append(observer)
    return observer


def observers() -> list[LockdepObserver]:
    with _registry_lock:
        return list(_observers)


def reset() -> None:
    """Forget every registered observer (test hygiene)."""
    with _registry_lock:
        _observers.clear()


@contextmanager
def scoped() -> Iterator[list[LockdepObserver]]:
    """Run a block against a fresh, isolated observer registry.

    Tests that *seed* violations on purpose use this so their findings
    never leak into the run-wide report the conftest asserts clean.
    """
    global _observers
    with _registry_lock:
        saved = _observers
        _observers = []
    try:
        yield _observers
    finally:
        with _registry_lock:
            _observers = saved


def report() -> LockdepReport:
    """Aggregate findings across every observer registered this run."""
    out = LockdepReport()
    for observer in observers():
        out.observers += 1
        out.acquisitions += observer.acquisitions
        out.edges += observer.graph.edge_count
        out.violations.extend(observer.findings())
    return out


def assert_clean() -> LockdepReport:
    """Raise :class:`AnalysisError` if any observer saw a violation."""
    out = report()
    if not out.ok:
        raise AnalysisError(out.render())
    return out
