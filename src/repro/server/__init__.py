"""Serving front-end: the wire protocol, the threaded server, and the
client library (see DESIGN.md §5d and the README's "Serving" section).

Quickstart::

    from repro.server import ReproClient, ReproServer

    with ReproServer() as server:                # picks a free port
        with ReproClient(*server.address) as client:
            client.execute("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1)")
            print(client.select("t"))

Or from the command line: ``python -m repro serve --port 7654``.
"""

from .client import (
    DeliveryUnknown,
    ReproClient,
    ServerError,
    TransactionTorn,
    decorrelated_backoff,
)
from .ledger import LedgerError, ResultLedger
from .server import Overloaded, ReproServer
from .wire import WireError

__all__ = [
    "DeliveryUnknown",
    "decorrelated_backoff",
    "LedgerError",
    "Overloaded",
    "ReproClient",
    "ReproServer",
    "ResultLedger",
    "ServerError",
    "TransactionTorn",
    "WireError",
]
