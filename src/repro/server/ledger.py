"""The exactly-once result ledger.

A retried mutation must not re-fire the triggers the paper costs out:
after a torn reply the client cannot know whether its insert committed,
so it re-sends the same request and the server must answer *from
memory of the commit*, not by executing again.  The protocol:

* every mutating request carries a ``(client_id, request_id)`` pair,
  with ``request_id`` strictly monotonic per client (the client is a
  single statement stream, like any SQL connection);
* before executing, the server consults the ledger — a hit means the
  original attempt committed and its acknowledged result is replayed
  verbatim (stamped ``"replayed": True``);
* on commit, the entry rides *inside the WAL commit record*
  (:meth:`~repro.storage.wal.WriteAheadLog.commit`'s ``note``), so the
  result is durable exactly iff the commit is — there is no window
  where work survived a crash but the ledger forgot it, or vice versa;
* checkpoints snapshot the ledger into the WAL's ``extras`` so
  compaction cannot truncate it away.

Bounds: each client keeps a **window** of its most recent acknowledged
results, not just the newest one.  A stop-and-wait client only ever
retries its single newest request, but a *pipelined* client streams many
stamped requests without awaiting replies — after a mid-stream tear it
redelivers every unacknowledged request, the oldest of which can sit
well behind the newest id the server completed.  The window (sized above
any sane pipeline depth) lets all of them replay.  A request id behind
the retained window is still a protocol violation and is refused rather
than re-executed; clients are evicted least-recently-used past
``capacity``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable
from typing import Any, TYPE_CHECKING

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.wal import WalRecord

#: Ledger snapshots map client id -> {request id: acknowledged result}.
#: (Older snapshots used ``(request_id, result)`` tuples; ``restore``
#: still accepts that shape.)
LedgerSnapshot = dict[str, "dict[int, dict[str, Any] | None]"]

#: Per-client replay window.  Must exceed the deepest pipeline a client
#: may have in flight when its connection tears.
DEFAULT_WINDOW = 256


class LedgerError(ReproError):
    """A malformed or out-of-order idempotency key."""


class LedgerEntry:
    """One in-flight mutating request's identity and (eventual) result.

    Created by the server before executing, annotated onto the session
    so the transaction's commit record captures it, and *filled*
    (``result`` assigned) by the op handler inside the transaction —
    i.e. before the commit flush serialises it to disk.
    """

    __slots__ = ("client_id", "request_id", "result")

    def __init__(self, client_id: str, request_id: int) -> None:
        self.client_id = client_id
        self.request_id = request_id
        self.result: dict[str, Any] | None = None

    def __repr__(self) -> str:
        state = "filled" if self.result is not None else "pending"
        return f"<LedgerEntry {self.client_id}#{self.request_id} ({state})>"


class ResultLedger:
    """Bounded per-client memory of acknowledged mutation results."""

    def __init__(
        self, capacity: int = 1024, window: int = DEFAULT_WINDOW
    ) -> None:
        if capacity < 1:
            raise LedgerError("ledger capacity must be >= 1")
        if window < 1:
            raise LedgerError("ledger window must be >= 1")
        self.capacity = capacity
        self.window = window
        self._mu = threading.Lock()
        #: client id -> request id -> acknowledged result, each inner
        #: map ordered by request id (its own bounded replay window).
        self._entries: OrderedDict[
            str, OrderedDict[int, dict[str, Any] | None]
        ] = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        with self._mu:
            return len(self._entries)

    # ------------------------------------------------------------------

    def replay(self, client_id: str, request_id: int) -> dict[str, Any] | None:
        """The stored response for a retried request, or None if new.

        Any id inside the client's retained window replays (a pipelined
        redelivery legitimately re-sends several ids at once, the oldest
        behind the newest completed one).  An id behind the window
        cannot be honoured — its result was already superseded — and
        re-executing it would break exactly-once, so it is refused
        loudly.
        """
        with self._mu:
            window = self._entries.get(client_id)
            if window is None:
                return None
            last_id = next(reversed(window))
            if request_id > last_id:
                return None
            result = window.get(request_id, _MISSING)
            if result is _MISSING:
                raise LedgerError(
                    f"client {client_id!r} replayed request {request_id} "
                    f"after already completing request {last_id}"
                )
            self._entries.move_to_end(client_id)
        if result is None:
            # The commit was durable but the handler never filled the
            # result (SQL-text transaction control commits mid-batch);
            # the caller learns "it committed" without the detail.
            return {"ok": True, "replayed": True, "result_lost": True}
        return {**result, "replayed": True}

    def record(
        self, client_id: str, request_id: int, result: dict[str, Any] | None
    ) -> None:
        """Remember the acknowledged result of a committed request."""
        with self._mu:
            window = self._entries.get(client_id)
            if window is None:
                window = self._entries[client_id] = OrderedDict()
            if request_id in window:
                if window[request_id] is None and result is not None:
                    window[request_id] = result  # fill a lost result
            else:
                out_of_order = bool(window) and request_id < next(
                    reversed(window)
                )
                window[request_id] = result
                if out_of_order:
                    # A stale restore landing after newer live commits:
                    # re-sort so pruning keeps dropping the oldest ids.
                    for key in sorted(window):
                        window.move_to_end(key)
                while len(window) > self.window:
                    window.popitem(last=False)
            self._entries.move_to_end(client_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    # Durability round trip

    def snapshot(self) -> LedgerSnapshot:
        """A picklable image for the WAL checkpoint's extras."""
        with self._mu:
            return {client: dict(window)
                    for client, window in self._entries.items()}

    def restore(
        self,
        snapshot: LedgerSnapshot | None,
        records: Iterable["WalRecord"] = (),
    ) -> int:
        """Rebuild from a checkpoint snapshot plus commit-record notes.

        Commit notes are applied in log order after the snapshot; the
        per-client monotonic request ids make the merge order-safe.
        Returns how many entries were restored.
        """
        restored = 0
        if snapshot:
            for client_id, stored in snapshot.items():
                if isinstance(stored, tuple):  # pre-window snapshot shape
                    stored = {stored[0]: stored[1]}
                for request_id in sorted(stored):
                    self.record(client_id, request_id, stored[request_id])
                    restored += 1
        for record in records:
            if record.kind != "commit" or not record.payload:
                continue
            note = record.payload[0]
            if isinstance(note, LedgerEntry):
                self.record(note.client_id, note.request_id, note.result)
                restored += 1
        return restored


#: Sentinel distinguishing "id absent from the window" from a stored
#: ``None`` result (committed, result lost).
_MISSING: Any = object()
