"""The exactly-once result ledger.

A retried mutation must not re-fire the triggers the paper costs out:
after a torn reply the client cannot know whether its insert committed,
so it re-sends the same request and the server must answer *from
memory of the commit*, not by executing again.  The protocol:

* every mutating request carries a ``(client_id, request_id)`` pair,
  with ``request_id`` strictly monotonic per client (the client is a
  single statement stream, like any SQL connection);
* before executing, the server consults the ledger — a hit means the
  original attempt committed and its acknowledged result is replayed
  verbatim (stamped ``"replayed": True``);
* on commit, the entry rides *inside the WAL commit record*
  (:meth:`~repro.storage.wal.WriteAheadLog.commit`'s ``note``), so the
  result is durable exactly iff the commit is — there is no window
  where work survived a crash but the ledger forgot it, or vice versa;
* checkpoints snapshot the ledger into the WAL's ``extras`` so
  compaction cannot truncate it away.

Bounds: request ids are monotonic, so one entry per client suffices
(the client only ever retries its newest request); clients are evicted
least-recently-used past ``capacity``.  A request id older than the
stored one is a protocol violation and is refused rather than
re-executed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable
from typing import Any, TYPE_CHECKING

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.wal import WalRecord

#: Ledger snapshots map client id -> (request id, acknowledged result).
LedgerSnapshot = dict[str, tuple[int, "dict[str, Any] | None"]]


class LedgerError(ReproError):
    """A malformed or out-of-order idempotency key."""


class LedgerEntry:
    """One in-flight mutating request's identity and (eventual) result.

    Created by the server before executing, annotated onto the session
    so the transaction's commit record captures it, and *filled*
    (``result`` assigned) by the op handler inside the transaction —
    i.e. before the commit flush serialises it to disk.
    """

    __slots__ = ("client_id", "request_id", "result")

    def __init__(self, client_id: str, request_id: int) -> None:
        self.client_id = client_id
        self.request_id = request_id
        self.result: dict[str, Any] | None = None

    def __repr__(self) -> str:
        state = "filled" if self.result is not None else "pending"
        return f"<LedgerEntry {self.client_id}#{self.request_id} ({state})>"


class ResultLedger:
    """Bounded per-client memory of acknowledged mutation results."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise LedgerError("ledger capacity must be >= 1")
        self.capacity = capacity
        self._mu = threading.Lock()
        self._entries: OrderedDict[str, tuple[int, dict[str, Any] | None]] = (
            OrderedDict()
        )
        self.evictions = 0

    def __len__(self) -> int:
        with self._mu:
            return len(self._entries)

    # ------------------------------------------------------------------

    def replay(self, client_id: str, request_id: int) -> dict[str, Any] | None:
        """The stored response for a retried request, or None if new.

        A request id *behind* the stored one cannot be honoured — its
        result was already superseded — and re-executing it would break
        exactly-once, so it is refused loudly.
        """
        with self._mu:
            stored = self._entries.get(client_id)
            if stored is None:
                return None
            last_id, result = stored
            if request_id > last_id:
                return None
            if request_id < last_id:
                raise LedgerError(
                    f"client {client_id!r} replayed request {request_id} "
                    f"after already completing request {last_id}"
                )
            self._entries.move_to_end(client_id)
        if result is None:
            # The commit was durable but the handler never filled the
            # result (SQL-text transaction control commits mid-batch);
            # the caller learns "it committed" without the detail.
            return {"ok": True, "replayed": True, "result_lost": True}
        return {**result, "replayed": True}

    def record(
        self, client_id: str, request_id: int, result: dict[str, Any] | None
    ) -> None:
        """Remember the acknowledged result of a committed request."""
        with self._mu:
            stored = self._entries.get(client_id)
            if stored is not None and stored[0] > request_id:
                return  # stale restore racing a newer live commit
            self._entries[client_id] = (request_id, result)
            self._entries.move_to_end(client_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    # Durability round trip

    def snapshot(self) -> LedgerSnapshot:
        """A picklable image for the WAL checkpoint's extras."""
        with self._mu:
            return dict(self._entries)

    def restore(
        self,
        snapshot: LedgerSnapshot | None,
        records: Iterable["WalRecord"] = (),
    ) -> int:
        """Rebuild from a checkpoint snapshot plus commit-record notes.

        Commit notes are applied in log order after the snapshot; the
        per-client monotonic request ids make the merge order-safe.
        Returns how many entries were restored.
        """
        restored = 0
        if snapshot:
            for client_id, (request_id, result) in snapshot.items():
                self.record(client_id, request_id, result)
                restored += 1
        for record in records:
            if record.kind != "commit" or not record.payload:
                continue
            note = record.payload[0]
            if isinstance(note, LedgerEntry):
                self.record(note.client_id, note.request_id, note.result)
                restored += 1
        return restored
