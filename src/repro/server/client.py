"""Client library for the repro wire server.

Speaks the length-prefixed JSON protocol of :mod:`repro.server.wire`;
SQL NULL is plain ``None`` on this side of the wire::

    from repro.server import ReproClient

    with ReproClient("127.0.0.1", port) as client:
        client.execute("BEGIN")
        client.insert("booking", [1001, "BRT", None, "Nov 21"])
        client.execute("COMMIT")

Server-side failures surface as :class:`ServerError`; its ``retryable``
flag mirrors the server's judgement (deadlock victim, lock timeout,
admission rejection).  :meth:`ReproClient.retrying` wraps any call in
the engine's capped-backoff retry loop for exactly those errors.
"""

from __future__ import annotations

import socket
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from ..errors import ReproError
from ..testing.faults import retry_transient
from . import wire

T = TypeVar("T")


class ServerError(ReproError):
    """An error response from the server."""

    def __init__(self, message: str, error_type: str, retryable: bool) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.retryable = retryable


class ReproClient:
    """One connection to a :class:`~repro.server.server.ReproServer`.

    Not thread-safe: a connection is one session, and sessions (like SQL
    connections everywhere) are single-threaded.  Open one client per
    worker thread.
    """

    def __init__(
        self, host: str, port: int, connect_timeout: float = 5.0
    ) -> None:
        self._sock = socket.create_connection((host, port), connect_timeout)
        self._sock.settimeout(None)

    # ------------------------------------------------------------------

    def request(self, op: str, **payload: Any) -> dict[str, Any]:
        """One round-trip; raises :class:`ServerError` on failure."""
        wire.send_frame(self._sock, {"op": op, **payload})
        response = wire.recv_frame(self._sock)
        if response is None:
            raise wire.WireError("server closed the connection")
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown server error"),
                response.get("error_type", "ReproError"),
                bool(response.get("retryable")),
            )
        return response

    def retrying(
        self, fn: Callable[[], T], attempts: int = 6, base_delay: float = 0.005
    ) -> T:
        """Run *fn*, retrying retryable server errors with capped backoff."""

        def once() -> T:
            try:
                return fn()
            except ServerError as exc:
                if exc.retryable:
                    raise _RetryableServerError(str(exc)) from exc
                raise

        return retry_transient(
            once,
            attempts=attempts,
            base_delay=base_delay,
            retry_on=(_RetryableServerError,),
        )

    # ------------------------------------------------------------------
    # Ops

    def ping(self) -> int:
        """Round-trip liveness check; returns the server-side session id."""
        return self.request("ping")["session_id"]

    def execute(self, sql: str) -> list[dict[str, Any]]:
        return self.request("execute", sql=sql)["results"]

    def insert(self, table: str, values: Sequence[Any]) -> int:
        return self.request("insert", table=table, values=list(values))["rid"]

    def delete(self, table: str, equals: dict[str, Any] | None = None) -> int:
        return self.request("delete", table=table, equals=equals)["rowcount"]

    def update(
        self,
        table: str,
        assignments: dict[str, Any],
        equals: dict[str, Any] | None = None,
    ) -> int:
        return self.request(
            "update", table=table, assignments=assignments, equals=equals
        )["rowcount"]

    def select(
        self,
        table: str,
        equals: dict[str, Any] | None = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
    ) -> list[list[Any]]:
        return self.request(
            "select", table=table, equals=equals,
            columns=list(columns) if columns else None, limit=limit,
        )["rows"]

    def begin(self) -> int:
        return self.request("begin")["txn_id"]

    def commit(self) -> None:
        self.request("commit")

    def rollback(self) -> None:
        self.request("rollback")

    def verify(self) -> dict[str, Any]:
        return self.request("verify")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    # ------------------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _RetryableServerError(ReproError):
    """Internal: adapts retryable ServerErrors to retry_transient."""
