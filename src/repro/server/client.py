"""Client library for the repro wire server.

Speaks the length-prefixed JSON protocol of :mod:`repro.server.wire`;
SQL NULL is plain ``None`` on this side of the wire::

    from repro.server import ReproClient

    with ReproClient("127.0.0.1", port) as client:
        client.execute("BEGIN")
        client.insert("booking", [1001, "BRT", None, "Nov 21"])
        client.execute("COMMIT")

**Exactly-once mutations.**  Every mutating request is stamped with this
client's ``client_id`` and a monotonic ``request_id``.  When a send or a
reply tears (server killed, proxy dropped the frame), the outcome of
that exchange is *unknown*, so the client reconnects — patiently, to
ride out a server restart — and re-sends the **same** stamped message;
the server's result ledger replays the original acknowledgement if the
first attempt committed, and executes normally if it never arrived.
Only when every redelivery fails does :class:`DeliveryUnknown` surface,
and it is never retried under a fresh stamp.

Server-side failures surface as :class:`ServerError`; its ``retryable``
flag mirrors the server's judgement (deadlock victim, lock timeout,
admission rejection) and an error response proves the request did *not*
commit — :meth:`ReproClient.retrying` may therefore re-issue the call
under a new request id, honouring the server's ``retry_after`` hint
when one is given (admission control scales it with queue depth).
"""

from __future__ import annotations

import re
import socket
import time
import uuid
import zlib
from collections.abc import Callable, Iterator, Sequence
from typing import Any, TypeVar

from ..errors import ReproError
from . import wire

T = TypeVar("T")


def _uniform_stream(seed: int) -> Iterator[float]:
    """Seeded uniform(0, 1) stream via xorshift64* — the ``random``
    module is banned in engine code (lint rule RPR003), but retry
    jitter must still be reproducible under a test-provided seed."""
    state = (seed ^ 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF or 1
    while True:
        state ^= state >> 12
        state ^= (state << 25) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 27
        yield ((state * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF) / 2.0**64


def decorrelated_backoff(
    seed: int, base: float, cap: float
) -> Iterator[float]:
    """Decorrelated-jitter delays: ``next = min(cap, base + u * (prev*3
    - base))`` with ``u`` uniform in [0, 1).

    Unlike plain capped doubling, N clients bounced by the same
    overloaded server do not return in lockstep — each client's schedule
    spreads over ``[base, cap]`` and decorrelates further every step.
    Every delay is within ``[base, cap]``.
    """
    uniforms = _uniform_stream(seed)
    delay = base
    while True:
        delay = min(cap, base + next(uniforms) * max(0.0, delay * 3.0 - base))
        yield delay

#: Ops the server ledgers: stamped with (client, req) automatically.
_STAMPED_OPS = frozenset(
    {"insert", "delete", "update", "execute", "commit", "batch"}
)

_TXN_TOKEN = re.compile(r"\b(begin|commit|rollback)\b", re.IGNORECASE)


def _txn_effect(sql: str) -> str | None:
    """Net transaction-control effect of a SQL batch.

    Returns ``"begin"`` when the batch leaves a transaction open,
    ``"end"`` when it closes one, ``None`` when it contains no
    transaction control.  Decided by the *last* BEGIN/COMMIT/ROLLBACK
    token outside string literals — a client-side heuristic mirror of
    the server's real parse, used only to pick the redelivery policy
    and track :attr:`ReproClient._in_txn` for SQL-text transactions.
    """
    tokens = _TXN_TOKEN.findall(re.sub(r"'[^']*'", " ", sql))
    if not tokens:
        return None
    return "begin" if tokens[-1].lower() == "begin" else "end"


class ServerError(ReproError):
    """An error response from the server.

    Receiving one proves the request was *not* committed (the server
    answered after deciding), so callers may retry under a new stamp.
    """

    def __init__(
        self,
        message: str,
        error_type: str,
        retryable: bool,
        retry_after: float | None = None,
        rolled_back: bool = False,
    ) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.retryable = retryable
        #: Server-suggested backoff (admission control sets it from the
        #: queue depth); ``None`` when the server offered no hint.
        self.retry_after = retry_after
        #: True when the server rolled the session's transaction back
        #: before answering (deadlock victims, lock timeouts).
        self.rolled_back = rolled_back


class DeliveryUnknown(ReproError):
    """Every delivery attempt tore; the request's outcome is unknown.

    The one error an exactly-once client must *not* retry under a fresh
    request id — the original stamp may still commit server-side.
    Re-issue the same operation on a recovered connection (the ledger
    disambiguates) or surface the uncertainty to the application.
    """


class TransactionTorn(ReproError):
    """The connection died inside an explicit transaction.

    The server rolls an open transaction back when its connection dies,
    so nothing of the transaction survived — re-run it from ``begin``.
    Raised instead of redelivering, because a mid-transaction statement
    replayed onto a fresh session would execute as its own autocommit
    statement, outside the transaction it belonged to.
    """


class ReproClient:
    """One connection to a :class:`~repro.server.server.ReproServer`.

    Not thread-safe: a connection is one session, and sessions (like SQL
    connections everywhere) are single-threaded.  Open one client per
    worker thread.

    With ``auto_reconnect`` (the default), a torn exchange triggers
    transparent reconnect-and-redeliver under the same idempotency
    stamp.  Note a reconnect lands on a *fresh server session*: an open
    explicit transaction was already rolled back when the old connection
    died, so a redelivered ``commit`` correctly reports "no transaction
    to commit" unless the original commit made it (then the ledger
    replays its acknowledgement).
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        client_id: str | None = None,
        auto_reconnect: bool = True,
        redeliveries: int = 6,
        reconnect_attempts: int = 30,
        reconnect_delay: float = 0.05,
    ) -> None:
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        #: Stable identity for the server's result ledger.
        self.client_id = client_id if client_id is not None else uuid.uuid4().hex
        self.auto_reconnect = auto_reconnect
        self.redeliveries = redeliveries
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self._request_id = 0
        #: How many times this client re-established its connection.
        self.reconnects = 0
        #: Tracks ``begin``/``commit``/``rollback`` — structured ops and
        #: SQL-text batches alike — so a torn statement inside an
        #: explicit transaction raises TransactionTorn instead of being
        #: redelivered out of context.
        self._in_txn = False
        self._sock: socket.socket | None = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), self._connect_timeout
        )
        self._sock.settimeout(None)

    # ------------------------------------------------------------------

    def request(self, op: str, **payload: Any) -> dict[str, Any]:
        """One (redelivered-if-torn) exchange; :class:`ServerError` on
        failure responses, :class:`DeliveryUnknown` when no attempt
        completed, :class:`TransactionTorn` when the connection died
        mid-transaction on a non-commit statement."""
        message = {"op": op, **payload}
        if op in _STAMPED_OPS and "client" not in message:
            self._request_id += 1
            message["client"] = self.client_id
            message["req"] = self._request_id
        # SQL-text transactions (execute("BEGIN") ... execute("COMMIT"))
        # get the same taxonomy as the structured ops: a batch that ends
        # the transaction is redeliverable (the server ledgers it), one
        # that does not must not be replayed out of context.
        effect = None
        if op == "execute" and isinstance(payload.get("sql"), str):
            effect = _txn_effect(payload["sql"])
        ends_txn = op in ("commit", "rollback") or effect == "end"
        # A non-commit statement inside an explicit transaction must not
        # be redelivered: the server rolled the transaction back when the
        # connection died, and a replay on a fresh session would commit
        # the statement on its own, outside the dead transaction.
        redeliver = not (self._in_txn and not ends_txn)
        try:
            response = self._deliver(message, redeliver)
        except (wire.WireError, OSError) as exc:
            if redeliver:
                raise  # auto_reconnect disabled: surface the raw failure
            self._in_txn = False
            raise TransactionTorn(
                f"connection died inside an explicit transaction (on "
                f"{op!r}); the server rolled it back — re-run from begin"
            ) from exc
        except DeliveryUnknown:
            if ends_txn:
                self._in_txn = False  # the disconnected session's txn died
            raise
        except ServerError as exc:
            if exc.rolled_back or ends_txn:
                self._in_txn = False
            raise
        if op == "begin" or effect == "begin":
            self._in_txn = True
        elif ends_txn:
            self._in_txn = False
        return response

    def _deliver(
        self, message: dict[str, Any], redeliver: bool = True
    ) -> dict[str, Any]:
        try:
            return self._roundtrip(message)
        except (wire.WireError, OSError) as exc:
            if not self.auto_reconnect or not redeliver:
                raise
            last: Exception = exc
        # The exchange tore mid-flight: reconnect (patiently — the
        # server may be restarting) and re-send the SAME message.  The
        # idempotency stamp makes this safe: if the first attempt
        # committed, the ledger replays its acknowledged result.  The
        # backoff between redeliveries matters when a proxy or load
        # balancer accepts connections a dead upstream can't serve —
        # reconnecting then succeeds instantly but the exchange still
        # tears, so the reconnect loop's own patience never engages.
        delay = self.reconnect_delay
        for attempt in range(self.redeliveries):
            if attempt:
                time.sleep(min(delay, 1.0))
                delay *= 2
            try:
                self._reconnect()
                return self._roundtrip(message)
            except (wire.WireError, OSError) as exc:
                last = exc
        raise DeliveryUnknown(
            f"request {message.get('op')!r} outcome unknown after "
            f"{self.redeliveries} redeliveries: {last}"
        ) from last

    def _roundtrip(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._sock is None:
            raise wire.WireError("client is closed")
        wire.send_frame(self._sock, message)
        response = wire.recv_frame(self._sock)
        if response is None:
            raise wire.WireError("server closed the connection")
        if not response.get("ok"):
            retry_after = response.get("retry_after")
            raise ServerError(
                response.get("error", "unknown server error"),
                response.get("error_type", "ReproError"),
                bool(response.get("retryable")),
                float(retry_after) if retry_after is not None else None,
                bool(response.get("rolled_back")),
            )
        return response

    def _reconnect(self) -> None:
        self.close()
        delay = self.reconnect_delay
        last: Exception | None = None
        for __ in range(self.reconnect_attempts):
            try:
                self._connect()
                self.reconnects += 1
                return
            except OSError as exc:
                last = exc
                time.sleep(min(delay, 1.0))
                delay *= 2
        raise wire.WireError(
            f"could not reconnect to {self._host}:{self._port} after "
            f"{self.reconnect_attempts} attempts"
        ) from last

    def retrying(
        self,
        fn: Callable[[], T],
        attempts: int = 6,
        base_delay: float = 0.005,
        max_delay: float = 0.25,
        sleep: Callable[[float], None] = time.sleep,
        jitter_seed: int | None = None,
    ) -> T:
        """Run *fn*, retrying retryable server errors with decorrelated
        jitter (:func:`decorrelated_backoff`).

        An error response proves nothing committed, so each retry runs
        under a fresh request id (``fn`` re-stamps).  Jitter matters
        here precisely because many clients fail *together* — an
        ``Overloaded`` rejection storm retried in lockstep re-creates
        the storm; decorrelated schedules drain it.  The server's
        ``retry_after`` hint, when present, is honoured as a **floor**
        under the jittered delay, never shortened.  The jitter stream is
        seeded from the client id and request counter (reproducible
        runs); tests pin it with *jitter_seed*.  :class:`DeliveryUnknown`
        is deliberately *not* retried here — its outcome is undecided,
        not failed.
        """
        if jitter_seed is None:
            jitter_seed = (
                zlib.crc32(self.client_id.encode("utf-8"))
                ^ (self._request_id << 16)
            )
        delays = decorrelated_backoff(jitter_seed, base_delay, max_delay)
        for attempt in range(attempts):
            try:
                return fn()
            except ServerError as exc:
                if not exc.retryable or attempt == attempts - 1:
                    raise
                wait = next(delays)
                if exc.retry_after is not None:
                    wait = max(exc.retry_after, wait)
                sleep(wait)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Ops

    def ping(self) -> int:
        """Round-trip liveness check; returns the server-side session id."""
        return self.request("ping")["session_id"]

    def execute(self, sql: str) -> list[dict[str, Any]]:
        # A redelivered COMMIT batch may replay as the ledger's
        # ``result_lost`` marker, which carries no per-statement results.
        return self.request("execute", sql=sql).get("results", [])

    def insert(self, table: str, values: Sequence[Any]) -> int:
        return self.request("insert", table=table, values=list(values))["rid"]

    def batch_insert(
        self, table: str, rows: Sequence[Sequence[Any]]
    ) -> list[int]:
        """Insert many rows as ONE stamped request: one exactly-once
        ledger entry covers the whole batch, and the server runs the
        vectorized enforcement path (one index walk per key run)."""
        return self.request(
            "batch", table=table, rows=[list(r) for r in rows]
        )["rids"]

    def pipeline(self) -> "Pipeline":
        """Start a pipelined request stream on this connection.

        Requests are stamped and written eagerly without awaiting
        replies; :meth:`Pipeline.drain` collects the replies, which the
        server returns strictly in send order (each echoes its request
        ``id``).  Not allowed inside an explicit transaction: a torn
        pipeline would have to replay mid-transaction statements out of
        context (the same reason :meth:`request` refuses to redeliver
        them).
        """
        if self._in_txn:
            raise ReproError(
                "pipeline() inside an explicit transaction is not "
                "supported; commit or roll back first"
            )
        return Pipeline(self)

    def delete(self, table: str, equals: dict[str, Any] | None = None) -> int:
        return self.request("delete", table=table, equals=equals)["rowcount"]

    def update(
        self,
        table: str,
        assignments: dict[str, Any],
        equals: dict[str, Any] | None = None,
    ) -> int:
        return self.request(
            "update", table=table, assignments=assignments, equals=equals
        )["rowcount"]

    def select(
        self,
        table: str,
        equals: dict[str, Any] | None = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
        snapshot: bool = False,
    ) -> list[list[Any]]:
        """Read rows.  With ``snapshot=True`` the server runs the read as
        a lock-free MVCC snapshot at the latest committed LSN — it never
        waits on writers, at the price of not seeing this connection's
        own open transaction."""
        payload: dict[str, Any] = {
            "table": table, "equals": equals,
            "columns": list(columns) if columns else None, "limit": limit,
        }
        if snapshot:
            payload["snapshot"] = True
        return self.request("select", **payload)["rows"]

    def begin(self) -> int:
        return self.request("begin")["txn_id"]

    def commit(self) -> dict[str, Any]:
        return self.request("commit")

    def rollback(self) -> None:
        self.request("rollback")

    def verify(self) -> dict[str, Any]:
        return self.request("verify")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Pipeline:
    """One pipelined request stream on a :class:`ReproClient`.

    :meth:`send` stamps and writes each request immediately — no waiting
    for replies — and tags it with a connection-local ``id``.
    :meth:`drain` then collects every reply; the server answers one
    connection strictly in request order, and each reply echoes its
    request's ``id``, which drain verifies.

    Error replies do **not** stop the stream: the server keeps executing
    the later pipelined requests, so drain returns one response dict per
    request (``ok`` False for the failures) instead of raising on the
    first error.

    **Exactly-once across tears.**  Mutating requests carry the same
    ``(client, req)`` idempotency stamps as the unpipelined path, and
    they are assigned at *send* time.  When the stream tears (server
    killed mid-pipeline, proxy dropped a frame), every request whose
    reply never arrived is redelivered under its **original** stamp on
    a fresh connection — the server's result ledger replays the ones
    that committed and executes the ones that never arrived.  A batch
    acknowledged once is never applied twice.
    """

    def __init__(self, client: ReproClient) -> None:
        self._client = client
        self._sent: list[dict[str, Any]] = []
        self._next_id = 0
        self._torn = False
        self._drained = False

    def __len__(self) -> int:
        return len(self._sent)

    def send(self, op: str, **payload: Any) -> int:
        """Stamp and write one request without awaiting its reply.

        Returns the pipeline-local ``id`` the reply will echo.  A write
        failure does not raise: the request joins the unacknowledged
        tail and :meth:`drain` redelivers it under its original stamp.
        """
        if self._drained:
            raise ReproError("pipeline already drained")
        if op in ("begin", "commit", "rollback"):
            # A pipeline is an autocommit stream: transaction control
            # would tie later requests to session state a redelivery
            # (which lands on a fresh session) cannot reproduce.
            raise ReproError(f"{op!r} cannot be pipelined")
        client = self._client
        message: dict[str, Any] = {"op": op, **payload}
        if op in _STAMPED_OPS and "client" not in message:
            client._request_id += 1
            message["client"] = client.client_id
            message["req"] = client._request_id
        self._next_id += 1
        message["id"] = self._next_id
        self._sent.append(message)
        if not self._torn and client._sock is not None:
            try:
                wire.send_frame(client._sock, message)
            except (wire.WireError, OSError):
                self._torn = True
        else:
            self._torn = True
        return message["id"]

    def drain(self) -> list[dict[str, Any]]:
        """Collect one reply per sent request, in send order.

        Replies already in flight are read off the connection and their
        ``id`` pairing verified.  If the stream tore, the
        unacknowledged tail is redelivered request-by-request under the
        original stamps (``auto_reconnect`` permitting); error replies
        are returned as their response dicts, never raised.
        """
        if self._drained:
            raise ReproError("pipeline already drained")
        self._drained = True
        client = self._client
        responses: list[dict[str, Any]] = []
        pending = list(self._sent)
        while pending and not self._torn:
            try:
                response = wire.recv_frame(client._sock)  # type: ignore[arg-type]
            except (wire.WireError, OSError):
                self._torn = True
                break
            if response is None:
                self._torn = True
                break
            expected = pending[0]["id"]
            if response.get("id") != expected:
                raise wire.WireError(
                    f"pipelined reply out of order: expected id "
                    f"{expected}, got {response.get('id')!r}"
                )
            responses.append(response)
            pending.pop(0)
        if pending:
            if not client.auto_reconnect:
                raise DeliveryUnknown(
                    f"pipeline tore with {len(pending)} replies "
                    "outstanding and auto_reconnect disabled"
                )
            for message in pending:
                responses.append(self._redeliver(message))
        return responses

    def _redeliver(self, message: dict[str, Any]) -> dict[str, Any]:
        try:
            return self._client._deliver(message)
        except ServerError as exc:
            response: dict[str, Any] = {
                "ok": False,
                "id": message["id"],
                "error": str(exc),
                "error_type": exc.error_type,
                "retryable": exc.retryable,
                "rolled_back": exc.rolled_back,
            }
            if exc.retry_after is not None:
                response["retry_after"] = exc.retry_after
            return response
