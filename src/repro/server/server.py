"""A threaded wire server over one shared, session-managed database.

Architecture::

    accept thread ──> one handler thread per connection
                          │  each connection owns a Session
                          │  (isolated transaction slot + 2PL locks)
                          └─ requests run under admission control:
                             at most ``max_inflight`` statements execute
                             at once; the rest queue, and a queue wait
                             longer than ``admission_timeout`` is
                             rejected with a retryable "overloaded"
                             error (backpressure, not collapse).

Request ops (all JSON, see :mod:`repro.server.wire` for framing):

``ping`` · ``execute`` (SQL text, incl. BEGIN/COMMIT/ROLLBACK) ·
``insert`` / ``delete`` / ``update`` / ``select`` (structured DML) ·
``begin`` / ``commit`` / ``rollback`` · ``verify`` (integrity report) ·
``stats`` (server + lock-manager counters).

Error responses carry ``retryable``: deadlock victims, lock timeouts,
injected transient faults and admission rejections are safe to retry
after the automatic rollback; integrity vetoes are semantic and are not.

Graceful shutdown (:meth:`ReproServer.shutdown`) stops accepting, lets
in-flight requests finish, rolls back every open session transaction
and only then returns — clients see clean connection closes, never a
torn transaction.
"""

from __future__ import annotations

import socket
import threading
from typing import TYPE_CHECKING, Any

from ..concurrency.locks import DEFAULT_LOCK_TIMEOUT
from ..errors import (
    DeadlockError,
    LockTimeoutError,
    ReproError,
    TransientFault,
)
from ..query.predicate import And, Eq, IsNull, Predicate
from ..sql import ast as sql_ast
from ..sql import parse
from ..sql.interpreter import SqlSession
from ..storage.database import Database
from ..testing.faults import fire
from . import wire

if TYPE_CHECKING:  # pragma: no cover
    from ..concurrency.session import Session

#: Granted to admission-queue waits before the request is bounced.
DEFAULT_ADMISSION_TIMEOUT = 2.0

#: How often blocked accept/recv loops wake to check for shutdown.
_POLL_S = 0.2

_RETRYABLE = (DeadlockError, LockTimeoutError, TransientFault)


class Overloaded(ReproError):
    """Admission control rejected the request; retry after backoff."""


class ServerStats:
    """Thread-safe counters exposed by the ``stats`` op."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self.connections_total = 0
        self.requests = 0
        self.errors = 0
        self.rejected = 0
        self.rolled_back_on_shutdown = 0

    def bump(self, field: str, by: int = 1) -> None:
        with self._mu:
            setattr(self, field, getattr(self, field) + by)

    def snapshot(self) -> dict[str, int]:
        with self._mu:
            return {
                "connections_total": self.connections_total,
                "requests": self.requests,
                "errors": self.errors,
                "rejected": self.rejected,
                "rolled_back_on_shutdown": self.rolled_back_on_shutdown,
            }


class ReproServer:
    """Serve a database over the length-prefixed JSON protocol."""

    def __init__(
        self,
        db: Database | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 8,
        admission_timeout: float = DEFAULT_ADMISSION_TIMEOUT,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> None:
        self.db = db if db is not None else Database("served")
        if self.db.session_manager is None:
            self.db.enable_sessions(lock_timeout=lock_timeout)
        self.sessions = self.db.session_manager
        self.host = host
        self._requested_port = port
        self.stats = ServerStats()
        self.max_inflight = max_inflight
        self.admission_timeout = admission_timeout
        self._admission = threading.Semaphore(max_inflight)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._handlers_mu = threading.Lock()
        self._stopping = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def port(self) -> int:
        if self._listener is None:
            raise ReproError("server is not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "ReproServer":
        """Bind, listen and start accepting in a background thread."""
        if self._started:
            raise ReproError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(64)
        listener.settimeout(_POLL_S)
        self._listener = listener
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def shutdown(self, timeout: float = 10.0) -> int:
        """Drain and stop.  Returns how many open transactions were
        rolled back on behalf of their (now disconnected) sessions."""
        if not self._started:
            return 0
        before = self.stats.rolled_back_on_shutdown
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        with self._handlers_mu:
            handlers = list(self._handlers)
        for thread in handlers:
            thread.join(timeout)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        # Draining handlers roll back their own sessions; close_all picks
        # up whatever was left (e.g. sessions created outside a handler).
        self.stats.bump("rolled_back_on_shutdown", self.sessions.close_all())
        self._started = False
        return self.stats.rolled_back_on_shutdown - before

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Accept / per-connection loops

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.stats.bump("connections_total")
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name=f"repro-conn-{self.stats.connections_total}",
                daemon=True,
            )
            with self._handlers_mu:
                self._handlers.append(thread)
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        conn.settimeout(_POLL_S)
        session = self.sessions.session()
        sql_session = SqlSession(self.db)
        try:
            while not self._stopping.is_set():
                try:
                    request = wire.recv_frame(conn)
                except socket.timeout:
                    continue
                except (wire.WireError, OSError):
                    break
                if request is None:
                    break  # clean EOF
                conn.settimeout(None)  # replies must not be torn
                try:
                    response = self._dispatch(session, sql_session, request)
                except Exception as exc:  # noqa: BLE001 - boundary
                    response = self._error_response(session, exc)
                try:
                    wire.send_frame(conn, response)
                except OSError:
                    break
                finally:
                    conn.settimeout(_POLL_S)
        finally:
            if session.in_transaction:
                if self._stopping.is_set():
                    self.stats.bump("rolled_back_on_shutdown")
                session.rollback()
            session.close()
            try:
                conn.close()
            except OSError:
                pass
            with self._handlers_mu:
                current = threading.current_thread()
                if current in self._handlers:
                    self._handlers.remove(current)

    # ------------------------------------------------------------------
    # Dispatch

    def _dispatch(
        self,
        session: "Session",
        sql_session: SqlSession,
        request: dict[str, Any],
    ) -> dict[str, Any]:
        fire("server.request")
        self.stats.bump("requests")
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ReproError(f"unknown op {op!r}")
        return handler(session, sql_session, request)

    def _error_response(self, session: "Session", exc: Exception) -> dict[str, Any]:
        self.stats.bump("errors")
        retryable = isinstance(exc, (_RETRYABLE, Overloaded))
        if isinstance(exc, Overloaded):
            self.stats.bump("rejected")
        # A deadlock victim / timed-out statement leaves the transaction
        # holding its locks; the only sane continuation is rollback, so
        # do it server-side and tell the client.
        rolled_back = False
        if isinstance(exc, _RETRYABLE) and session.in_transaction:
            session.rollback()
            rolled_back = True
        return {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "retryable": retryable,
            "rolled_back": rolled_back,
        }

    def _admitted(self, fn):
        """Run *fn* under admission control (bounded in-flight work)."""
        if not self._admission.acquire(timeout=self.admission_timeout):
            raise Overloaded(
                f"more than {self.max_inflight} statements in flight; "
                "retry after backoff"
            )
        try:
            return fn()
        finally:
            self._admission.release()

    # ------------------------------------------------------------------
    # Ops

    def _op_ping(self, session, sql_session, request) -> dict[str, Any]:
        return {"ok": True, "pong": True, "session_id": session.session_id}

    def _op_execute(self, session, sql_session, request) -> dict[str, Any]:
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ReproError("execute needs a 'sql' string")
        statements = parse(sql)
        txn_control = any(
            isinstance(s, (sql_ast.Begin, sql_ast.Commit, sql_ast.Rollback))
            for s in statements
        )

        def run() -> list[dict[str, Any]]:
            results = []
            for statement in statements:
                result = sql_session._run(statement)
                results.append({
                    "message": result.message,
                    "columns": list(result.columns),
                    "rows": [wire.encode_row(r) for r in result.rows],
                    "rowcount": result.rowcount,
                })
            return results

        def statement() -> list[dict[str, Any]]:
            if txn_control or session.in_transaction:
                # BEGIN/COMMIT manage the session transaction themselves;
                # inside an explicit transaction nothing auto-commits.
                with session.use():
                    with session.db_latch():
                        return run()
            return session.execute(run)

        return {"ok": True, "results": self._admitted(statement)}

    def _op_insert(self, session, sql_session, request) -> dict[str, Any]:
        table = request["table"]
        values = wire.decode_values(request["values"])
        rid = self._admitted(lambda: session.insert(table, values))
        return {"ok": True, "rid": rid}

    def _op_delete(self, session, sql_session, request) -> dict[str, Any]:
        table = request["table"]
        predicate = _predicate_from(request.get("equals"))
        count = self._admitted(lambda: session.delete_where(table, predicate))
        return {"ok": True, "rowcount": count}

    def _op_update(self, session, sql_session, request) -> dict[str, Any]:
        table = request["table"]
        assignments = {
            column: wire.decode_value(value)
            for column, value in request["assignments"].items()
        }
        predicate = _predicate_from(request.get("equals"))
        count = self._admitted(
            lambda: session.update_where(table, assignments, predicate)
        )
        return {"ok": True, "rowcount": count}

    def _op_select(self, session, sql_session, request) -> dict[str, Any]:
        table = request["table"]
        predicate = _predicate_from(request.get("equals"))
        columns = request.get("columns")
        limit = request.get("limit")
        rows = self._admitted(
            lambda: session.select(table, predicate, columns, limit)
        )
        return {"ok": True, "rows": [wire.encode_row(r) for r in rows]}

    def _op_begin(self, session, sql_session, request) -> dict[str, Any]:
        txn = session.begin()
        return {"ok": True, "txn_id": txn.txn_id}

    def _op_commit(self, session, sql_session, request) -> dict[str, Any]:
        session.commit()
        return {"ok": True}

    def _op_rollback(self, session, sql_session, request) -> dict[str, Any]:
        session.rollback()
        return {"ok": True}

    def _op_verify(self, session, sql_session, request) -> dict[str, Any]:
        def run():
            with session.use():
                with session.db_latch():
                    return self.db.verify_integrity()

        report = self._admitted(run)
        return {
            "ok": True,
            "clean": report.ok,
            "problem_count": len(report.problems()),
            "report": report.render(),
        }

    def _op_stats(self, session, sql_session, request) -> dict[str, Any]:
        return {
            "ok": True,
            "server": self.stats.snapshot(),
            "locks": self.sessions.stats(),
        }


def _predicate_from(equals: dict[str, Any] | None) -> Predicate | None:
    """Column=value conjunction; JSON null means IS NULL."""
    if not equals:
        return None
    parts: list[Predicate] = [
        IsNull(column) if value is None else Eq(column, value)
        for column, value in equals.items()
    ]
    return parts[0] if len(parts) == 1 else And(*parts)
