"""An asyncio pipelined wire server over one shared, session-managed
database.

Architecture::

    asyncio event loop (background thread)
        │  one reader task + one worker task per connection
        │     reader: decodes frames as fast as they arrive and queues
        │             them — clients may *pipeline* (stream stamped
        │             requests without awaiting replies)
        │     worker: executes the queue strictly in order, one at a
        │             time (a connection is one Session), and replies
        │             in order, echoing each request's ``id``
        └─ dispatch runs on a thread pool: blocking engine work (locks,
           the statement latch, admission waits) never blocks the loop.
           Admission control is unchanged: at most ``max_inflight``
           statements execute at once; the rest queue, and a queue wait
           longer than ``admission_timeout`` is rejected with a
           retryable "overloaded" error (backpressure, not collapse).

Request ops (all JSON, see :mod:`repro.server.wire` for framing):

``ping`` · ``execute`` (SQL text, incl. BEGIN/COMMIT/ROLLBACK) ·
``insert`` / ``delete`` / ``update`` / ``select`` (structured DML) ·
``batch`` (vectorized multi-row insert) · ``begin`` / ``commit`` /
``rollback`` · ``verify`` (integrity report) · ``stats`` (server +
lock-manager counters).

**Pipelining.**  Replies on one connection are always in request order;
a request carrying an ``id`` field gets it echoed on its reply, so a
pipelining client can additionally assert the pairing.  Ordering is per
connection only — concurrent connections interleave at the engine's
discretion, exactly as before.

Error responses carry ``retryable``: deadlock victims, lock timeouts,
injected transient faults and admission rejections are safe to retry
after the automatic rollback; integrity vetoes are semantic and are not.
``Overloaded`` rejections additionally carry a ``retry_after`` hint
derived from the admission-queue depth, which well-behaved clients honor
instead of blind backoff.

**Fault tolerance** (DESIGN.md §5g): started with a ``data_dir``, the
server attaches a file-backed WAL (:func:`repro.storage.wal.open_durable`)
and replays the pre-crash database on start, so ``kill -9`` loses no
acknowledged commit.  Mutating requests stamped with a monotonic
``(client, req)`` pair get exactly-once semantics: the result is
persisted *inside* the WAL commit record and a reconnect-and-retry
replays the acknowledged answer from the
:class:`~repro.server.ledger.ResultLedger` instead of re-executing the
triggers.

Graceful shutdown (:meth:`ReproServer.shutdown`) stops accepting, lets
in-flight requests finish, rolls back every open session transaction
and only then returns — clients see clean connection closes, never a
torn transaction.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any

from ..concurrency.locks import DEFAULT_LOCK_TIMEOUT
from ..errors import (
    DeadlockError,
    LockTimeoutError,
    ReproError,
    SerializationError,
    TransientFault,
)
from ..query.predicate import And, Eq, IsNull, Predicate
from ..sql import ast as sql_ast
from ..sql import parse
from ..sql.interpreter import SqlSession
from ..storage.database import Database
from ..storage.wal import open_durable
from ..testing.faults import fire
from . import wire
from .ledger import LedgerEntry, LedgerError, ResultLedger

if TYPE_CHECKING:  # pragma: no cover
    from ..concurrency.session import Session
    from ..storage.wal import RecoveryReport

#: Granted to admission-queue waits before the request is bounced.
DEFAULT_ADMISSION_TIMEOUT = 2.0

#: A reply send blocked longer than this disconnects the (stalled)
#: reader instead of pinning a worker thread forever.
DEFAULT_SEND_TIMEOUT = 10.0

#: Ledgered commits between durable checkpoints (log compaction).
DEFAULT_CHECKPOINT_EVERY = 256

_RETRYABLE = (DeadlockError, LockTimeoutError, SerializationError, TransientFault)

#: Ops that may commit under an idempotency key.  ``begin`` is absent on
#: purpose: retrying it on a fresh connection is inherently safe (the
#: torn connection's transaction was rolled back at disconnect).
#: ``txn`` is the shard coordinator's one-phase batch: it autocommits,
#: so a redelivered batch must replay rather than re-execute.  ``batch``
#: is the vectorized multi-row insert: one stamp covers the whole batch.
_LEDGERED_OPS = frozenset(
    {"insert", "delete", "update", "execute", "commit", "txn", "batch"}
)

#: Sentinel a connection's reader task enqueues when its stream ends
#: (clean EOF, torn frame, injected fault): tells the worker to stop.
_EOF = object()


class Overloaded(ReproError):
    """Admission control rejected the request; retry after the hint."""

    def __init__(self, message: str, retry_after: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServerStats:
    """Thread-safe counters exposed by the ``stats`` op."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self.connections_total = 0
        self.requests = 0
        self.errors = 0
        self.rejected = 0
        self.rolled_back_on_shutdown = 0
        self.send_timeouts = 0
        self.idempotent_replays = 0
        self.accept_faults = 0
        self.checkpoints = 0
        self.read_faults = 0

    def bump(self, field: str, by: int = 1) -> None:
        with self._mu:
            setattr(self, field, getattr(self, field) + by)

    def snapshot(self) -> dict[str, int]:
        with self._mu:
            return {
                "connections_total": self.connections_total,
                "requests": self.requests,
                "errors": self.errors,
                "rejected": self.rejected,
                "rolled_back_on_shutdown": self.rolled_back_on_shutdown,
                "send_timeouts": self.send_timeouts,
                "idempotent_replays": self.idempotent_replays,
                "accept_faults": self.accept_faults,
                "checkpoints": self.checkpoints,
                "read_faults": self.read_faults,
            }


class ReproServer:
    """Serve a database over the length-prefixed JSON protocol."""

    def __init__(
        self,
        db: Database | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 8,
        admission_timeout: float = DEFAULT_ADMISSION_TIMEOUT,
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
        send_timeout: float = DEFAULT_SEND_TIMEOUT,
        data_dir: str | None = None,
        checkpoint_every: int | None = None,
        ledger_capacity: int = 1024,
        resolve_after: float | None = None,
        presume_abort_after: float | None = None,
    ) -> None:
        self.db = db if db is not None else Database("served")
        if self.db.session_manager is None:
            self.db.enable_sessions(lock_timeout=lock_timeout)
        self.sessions = self.db.session_manager
        # MVCC is always on under the server: selects may opt into
        # lock-free snapshot reads, and FK witnesses are re-validated at
        # commit (a vanished parent aborts with a retryable
        # SerializationError instead of re-probing under the lock).
        self.db.enable_mvcc()
        self.host = host
        self._requested_port = port
        self.stats = ServerStats()
        self.max_inflight = max_inflight
        self.admission_timeout = admission_timeout
        self.send_timeout = send_timeout
        self._admission = threading.Semaphore(max_inflight)
        self._admission_mu = threading.Lock()
        self._admission_waiting = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._aserver: asyncio.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_queues: set[asyncio.Queue] = set()
        self._stopping = threading.Event()
        self._started = False
        # Durability: a data_dir makes the WAL file-backed and replays
        # the pre-crash database (plus the exactly-once ledger) on start.
        self.ledger = ResultLedger(capacity=ledger_capacity)
        self.data_dir = data_dir
        self.recovery_report: "RecoveryReport | None" = None
        if checkpoint_every is None:
            checkpoint_every = DEFAULT_CHECKPOINT_EVERY if data_dir else 0
        self.checkpoint_every = checkpoint_every
        self._commits_since_checkpoint = 0
        # 2PC participant (lazy import: sharding imports this module).
        from ..sharding.twophase import TwoPhaseParticipant

        twophase_opts = {}
        if resolve_after is not None:
            twophase_opts["resolve_after"] = resolve_after
        if presume_abort_after is not None:
            twophase_opts["presume_abort_after"] = presume_abort_after
        self.twophase = TwoPhaseParticipant(self, **twophase_opts)
        if data_dir is not None:
            wal, self.recovery_report = open_durable(self.db, data_dir)
            self.ledger.restore(
                wal.checkpoint_extras.get("ledger"), wal.durable_records
            )
            # Reinstate in-doubt 2PC transactions before serving: their
            # re-acquired locks must be in place when the first client
            # statement arrives.
            self.twophase.reinstate()

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def port(self) -> int:
        if self._aserver is None:
            raise ReproError("server is not started")
        return self._aserver.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "ReproServer":
        """Bind, listen and start serving on a background event loop."""
        if self._started:
            raise ReproError("server already started")
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="repro-loop", daemon=True
        )
        self._loop_thread.start()
        # Dispatch blocks (locks, latch, admission waits); each serial
        # connection worker holds at most one pool thread at a time, so
        # sizing generously above max_inflight keeps admission control —
        # not pool starvation — the thing that sheds load.
        self._executor = ThreadPoolExecutor(
            max_workers=max(32, self.max_inflight * 4),
            thread_name_prefix="repro-dispatch",
        )
        try:
            self._aserver = asyncio.run_coroutine_threadsafe(
                self._start_serving(), self._loop
            ).result()
        except BaseException:
            self._stop_loop()
            raise
        self._started = True
        return self

    async def _start_serving(self) -> asyncio.Server:
        return await asyncio.start_server(
            self._serve_connection, self.host, self._requested_port
        )

    def _stop_loop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(5.0)
                self._loop_thread = None
            self._loop.close()
            self._loop = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def shutdown(self, timeout: float = 10.0) -> int:
        """Drain and stop.  Returns how many open transactions were
        rolled back on behalf of their (now disconnected) sessions."""
        if not self._started:
            return 0
        before = self.stats.rolled_back_on_shutdown
        self.twophase.stop()
        self._stopping.set()
        assert self._loop is not None
        asyncio.run_coroutine_threadsafe(
            self._drain(timeout), self._loop
        ).result(timeout + 5.0)
        self._aserver = None
        self._stop_loop()
        # Draining workers roll back their own sessions; close_all picks
        # up whatever was left (e.g. sessions created outside a handler).
        self.stats.bump("rolled_back_on_shutdown", self.sessions.close_all())
        self._started = False
        return self.stats.rolled_back_on_shutdown - before

    async def _drain(self, timeout: float) -> None:
        """Stop accepting, let each worker finish its in-flight request
        (and send its reply), discard queued pipeline tail, close."""
        if self._aserver is not None:
            self._aserver.close()
            await self._aserver.wait_closed()
        # Wake workers blocked on an idle queue; workers re-check the
        # stopping flag after every dequeue, so anything still queued
        # behind the in-flight request is discarded, not executed.
        for queue in list(self._conn_queues):
            queue.put_nowait(_EOF)
        tasks = list(self._conn_tasks)
        if tasks:
            __, pending = await asyncio.wait(tasks, timeout=timeout)
            for task in pending:
                task.cancel()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Per-connection tasks

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        try:
            try:
                fire("wire.accept")
            except ReproError:
                # Injected accept fault: shed the connection at the door.
                self.stats.bump("accept_faults")
                writer.close()
                return
            self.stats.bump("connections_total")
            await self._connection_loop(reader, writer)
        finally:
            self._conn_tasks.discard(task)

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        # Session creation can block on the manager latch: off the loop.
        session = await loop.run_in_executor(
            self._executor, self.sessions.session
        )
        sql_session = SqlSession(self.db)
        queue: asyncio.Queue = asyncio.Queue()
        self._conn_queues.add(queue)
        reader_task = asyncio.create_task(self._read_loop(reader, queue))
        try:
            while not self._stopping.is_set():
                request = await queue.get()
                if request is _EOF or self._stopping.is_set():
                    break
                response = await loop.run_in_executor(
                    self._executor, self._dispatch_safely,
                    session, sql_session, request,
                )
                if "id" in request:
                    # Copy before tagging: the dict may be a ledger-cached
                    # reply, and the stamp's recorded result must not grow
                    # connection-local fields.
                    response = {**response, "id": request["id"]}
                # Replies must not be torn, but a stalled reader must
                # not pin this connection forever either: bound the
                # drain and disconnect the offender on timeout.
                try:
                    await asyncio.wait_for(
                        wire.write_frame(writer, response), self.send_timeout
                    )
                except asyncio.TimeoutError:
                    self.stats.bump("send_timeouts")
                    break
                except (ConnectionError, OSError):
                    break
        finally:
            reader_task.cancel()
            self._conn_queues.discard(queue)
            await loop.run_in_executor(
                self._executor, self._release_session, session
            )
            writer.close()

    async def _read_loop(
        self, reader: asyncio.StreamReader, queue: asyncio.Queue
    ) -> None:
        """Decode frames as fast as the client pipelines them.

        Any read failure — clean EOF, torn frame, injected wire fault —
        ends the connection's intake; the worker finishes what is already
        queued (replies stay in order), then tears down.
        """
        try:
            while True:
                request = await wire.read_frame(reader)
                if request is None:
                    break  # clean EOF
                queue.put_nowait(request)
        except (wire.WireError, ReproError, OSError, EOFError):
            # A torn frame or injected wire fault ends intake for this
            # connection only; the client's redelivery protocol recovers.
            self.stats.bump("read_faults")
        finally:
            queue.put_nowait(_EOF)

    def _dispatch_safely(
        self,
        session: "Session",
        sql_session: SqlSession,
        request: dict[str, Any],
    ) -> dict[str, Any]:
        try:
            return self._dispatch(session, sql_session, request)
        except Exception as exc:  # noqa: BLE001 - boundary
            return self._error_response(session, exc)

    def _release_session(self, session: "Session") -> None:
        if session.in_transaction:
            if self._stopping.is_set():
                self.stats.bump("rolled_back_on_shutdown")
            session.rollback()
        session.close()

    # ------------------------------------------------------------------
    # Dispatch

    def _dispatch(
        self,
        session: "Session",
        sql_session: SqlSession,
        request: dict[str, Any],
    ) -> dict[str, Any]:
        fire("server.request")
        self.stats.bump("requests")
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ReproError(f"unknown op {op!r}")

        # Exactly-once: a stamped mutating request first consults the
        # ledger (a hit replays the acknowledged result without touching
        # the database), then executes with a LedgerEntry annotated onto
        # the session so the commit record persists its result.
        entry = self._ledger_entry_for(session, op, request)
        if entry is not None:
            cached = self.ledger.replay(entry.client_id, entry.request_id)
            if cached is not None:
                self.stats.bump("idempotent_replays")
                return cached
            session.annotate_next_commit(entry)
        try:
            response = handler(session, sql_session, request, entry)
        finally:
            committed = entry is not None and session._commit_note is None
            session.annotate_next_commit(None)
        if entry is not None and committed:
            self.ledger.record(entry.client_id, entry.request_id, entry.result)
            self._commits_since_checkpoint += 1
            self._maybe_checkpoint()
        return response

    def _ledger_entry_for(
        self, session: "Session", op: Any, request: dict[str, Any]
    ) -> LedgerEntry | None:
        if op not in _LEDGERED_OPS:
            return None
        client, req = request.get("client"), request.get("req")
        if not isinstance(client, str) or not isinstance(req, int):
            return None
        if op != "commit" and session.in_transaction:
            # A statement inside an explicit transaction commits nothing
            # by itself; only the final commit earns a ledger entry.  The
            # exception is an ``execute`` batch whose SQL itself contains
            # COMMIT — it ends the transaction, so its stamp must be
            # ledgered for the same torn-ack disambiguation as the
            # structured commit op.
            if not (op == "execute" and self._sql_commits(request.get("sql"))):
                return None
        return LedgerEntry(client, req)

    @staticmethod
    def _sql_commits(sql: Any) -> bool:
        if not isinstance(sql, str):
            return False
        return any(isinstance(s, sql_ast.Commit) for s in parse(sql))

    def _maybe_checkpoint(self) -> None:
        """Compact the durable log once enough commits accumulated.

        Runs opportunistically on a handler thread after its own
        statement finished.  The statement latch excludes concurrent
        statements; any *idle* open transaction defers the checkpoint to
        a later commit (a checkpoint must snapshot a committed state).
        """
        wal = self.db.wal
        if (
            wal is None
            or not wal.is_durable
            or self.checkpoint_every <= 0
            or self._commits_since_checkpoint < self.checkpoint_every
        ):
            return
        with self.sessions.latch:
            if any(s.in_transaction for s in self.sessions.open_sessions):
                return
            wal.checkpoint(self.db, extras={"ledger": self.ledger.snapshot()})
            self._commits_since_checkpoint = 0
            self.stats.bump("checkpoints")

    @staticmethod
    def _fill(
        entry: LedgerEntry | None, response: dict[str, Any]
    ) -> dict[str, Any]:
        """Record *response* as the entry's result — called inside the
        transaction, i.e. before the commit flush serialises the entry
        into the durable commit record."""
        if entry is not None:
            entry.result = response
        return response

    def _error_response(self, session: "Session", exc: Exception) -> dict[str, Any]:
        self.stats.bump("errors")
        retryable = isinstance(exc, (_RETRYABLE, Overloaded))
        if isinstance(exc, Overloaded):
            self.stats.bump("rejected")
        # A deadlock victim / timed-out statement leaves the transaction
        # holding its locks; the only sane continuation is rollback, so
        # do it server-side and tell the client.
        rolled_back = False
        if isinstance(exc, _RETRYABLE) and session.in_transaction:
            session.rollback()
            rolled_back = True
        response = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "retryable": retryable,
            "rolled_back": rolled_back,
        }
        if isinstance(exc, Overloaded):
            response["retry_after"] = exc.retry_after
        return response

    def _admitted(self, fn):
        """Run *fn* under admission control (bounded in-flight work).

        A rejection's ``retry_after`` hint scales with how many other
        requests were queued at that moment — the deeper the queue, the
        longer a well-behaved client should stay away.
        """
        with self._admission_mu:
            self._admission_waiting += 1
        try:
            admitted = self._admission.acquire(timeout=self.admission_timeout)
        finally:
            with self._admission_mu:
                self._admission_waiting -= 1
                depth = self._admission_waiting
        if not admitted:
            raise Overloaded(
                f"more than {self.max_inflight} statements in flight; "
                "retry after backoff",
                retry_after=min(2.0, 0.05 * (depth + 1)),
            )
        try:
            return fn()
        finally:
            self._admission.release()

    # ------------------------------------------------------------------
    # Ops.  Mutating handlers fill their LedgerEntry *inside* the
    # transaction closure, so the acknowledged result is serialised into
    # the durable commit record before the commit is acknowledged.

    def _op_ping(self, session, sql_session, request, entry) -> dict[str, Any]:
        return {"ok": True, "pong": True, "session_id": session.session_id}

    def _op_execute(self, session, sql_session, request, entry) -> dict[str, Any]:
        sql = request.get("sql")
        if not isinstance(sql, str):
            raise ReproError("execute needs a 'sql' string")
        statements = parse(sql)
        txn_control = any(
            isinstance(s, (sql_ast.Begin, sql_ast.Commit, sql_ast.Rollback))
            for s in statements
        )

        def run() -> list[dict[str, Any]]:
            results = []
            for statement in statements:
                result = sql_session._run(statement)
                results.append({
                    "message": result.message,
                    "columns": list(result.columns),
                    "rows": [wire.encode_row(r) for r in result.rows],
                    "rowcount": result.rowcount,
                })
            return results

        def statement() -> list[dict[str, Any]]:
            if txn_control or session.in_transaction:
                # BEGIN/COMMIT manage the session transaction themselves;
                # inside an explicit transaction nothing auto-commits.
                # A COMMIT in here fires before the batch's results are
                # assembled, so a replay of this request returns the
                # ledger's ``result_lost`` marker instead of the rows.
                with session.use():
                    with session.db_latch():
                        return run()

            def work() -> list[dict[str, Any]]:
                results = run()
                self._fill(entry, {"ok": True, "results": results})
                return results

            return session.execute(work)

        return {"ok": True, "results": self._admitted(statement)}

    def _op_insert(self, session, sql_session, request, entry) -> dict[str, Any]:
        table = request["table"]
        values = wire.decode_values(request["values"])

        def work() -> dict[str, Any]:
            rid = self.db.insert(table, values)
            return self._fill(entry, {"ok": True, "rid": rid})

        return self._admitted(lambda: session.execute(work))

    def _op_batch(self, session, sql_session, request, entry) -> dict[str, Any]:
        """Vectorized multi-row insert: one stamp, one transaction, one
        index walk per run of adjacent keys (repro.core.batch)."""
        table = request["table"]
        rows_field = request.get("rows")
        if not isinstance(rows_field, list):
            raise ReproError("batch needs a 'rows' list")
        rows = [wire.decode_values(r) for r in rows_field]

        def work() -> dict[str, Any]:
            rids = self.db.batch_insert(table, rows)
            return self._fill(
                entry, {"ok": True, "rids": rids, "rowcount": len(rids)}
            )

        return self._admitted(lambda: session.execute(work))

    def _op_delete(self, session, sql_session, request, entry) -> dict[str, Any]:
        table = request["table"]
        predicate = _predicate_from(request.get("equals"))

        def work() -> dict[str, Any]:
            count = self.db.delete_where(table, predicate)
            return self._fill(entry, {"ok": True, "rowcount": count})

        return self._admitted(lambda: session.execute(work))

    def _op_update(self, session, sql_session, request, entry) -> dict[str, Any]:
        table = request["table"]
        assignments = {
            column: wire.decode_value(value)
            for column, value in request["assignments"].items()
        }
        predicate = _predicate_from(request.get("equals"))

        def work() -> dict[str, Any]:
            count = self.db.update_where(table, assignments, predicate)
            return self._fill(entry, {"ok": True, "rowcount": count})

        return self._admitted(lambda: session.execute(work))

    def _op_select(self, session, sql_session, request, entry) -> dict[str, Any]:
        table = request["table"]
        predicate = _predicate_from(request.get("equals"))
        columns = request.get("columns")
        limit = request.get("limit")
        if request.get("snapshot"):
            # Lock-free MVCC read at the latest committed LSN: shared
            # statement latch only, zero lock-manager traffic.
            rows = self._admitted(
                lambda: session.snapshot_select(table, predicate, columns, limit)
            )
        else:
            rows = self._admitted(
                lambda: session.select(table, predicate, columns, limit)
            )
        return {"ok": True, "rows": [wire.encode_row(r) for r in rows]}

    def _op_begin(self, session, sql_session, request, entry) -> dict[str, Any]:
        txn = session.begin()
        return {"ok": True, "txn_id": txn.txn_id}

    def _op_commit(self, session, sql_session, request, entry) -> dict[str, Any]:
        # Fill before committing: the commit flush serialises the entry.
        response = self._fill(entry, {"ok": True})
        session.commit()
        return response

    def _op_rollback(self, session, sql_session, request, entry) -> dict[str, Any]:
        session.rollback()
        return {"ok": True}

    def _op_verify(self, session, sql_session, request, entry) -> dict[str, Any]:
        def run():
            with session.use():
                with session.db_latch():
                    return self.db.verify_integrity()

        report = self._admitted(run)
        return {
            "ok": True,
            "clean": report.ok,
            "problem_count": len(report.problems()),
            "report": report.render(),
        }

    def _op_stats(self, session, sql_session, request, entry) -> dict[str, Any]:
        return {
            "ok": True,
            "server": self.stats.snapshot(),
            "locks": self.sessions.stats(),
            "ledger": {
                "entries": len(self.ledger),
                "evictions": self.ledger.evictions,
            },
            "twophase": self.twophase.stats_snapshot(),
        }

    # ------------------------------------------------------------------
    # Sharding ops (coordinator-facing; see repro.sharding)

    def _op_txn(self, session, sql_session, request, entry) -> dict[str, Any]:
        """One-phase shard batch: the coordinator's co-located ops run
        as a single autocommit transaction under the client's stamp."""
        from ..sharding.twophase import apply_shard_op

        ops = request.get("ops")
        if not isinstance(ops, list) or not ops:
            raise ReproError("txn needs a non-empty 'ops' list")

        def work() -> dict[str, Any]:
            results = [apply_shard_op(self, session, op) for op in ops]
            return self._fill(entry, {"ok": True, "results": results})

        return self._admitted(lambda: session.execute(work))

    def _op_prepare(self, session, sql_session, request, entry) -> dict[str, Any]:
        gtid = request.get("gtid")
        if not isinstance(gtid, str):
            raise ReproError("prepare needs a 'gtid' string")
        ops = request.get("ops") or []
        seq = int(request.get("seq") or 0)
        resolve = request.get("resolve")
        resolve_addr = (resolve[0], int(resolve[1])) if resolve else None
        results = self._admitted(
            lambda: self.twophase.prepare(
                gtid, ops, seq=seq, resolve_addr=resolve_addr
            )
        )
        # The vote is out: from here on an unreachable coordinator must
        # be survivable, so the resolver watches the in-doubt window.
        self.twophase.ensure_resolver()
        return {"ok": True, "vote": "prepared", "results": results}

    def _op_decide(self, session, sql_session, request, entry) -> dict[str, Any]:
        # No admission gate: a decide releases locks others wait on;
        # queueing it behind the very statements it would unblock
        # inverts the dependency.
        gtid = request.get("gtid")
        verdict = request.get("verdict")
        if not isinstance(gtid, str) or not isinstance(verdict, str):
            raise ReproError("decide needs 'gtid' and 'verdict' strings")
        return {"ok": True, "state": self.twophase.decide(gtid, verdict)}

    def _op_ledger_peek(self, session, sql_session, request, entry) -> dict[str, Any]:
        """Read-only ledger probe: lets a restarted coordinator ask
        whether a client stamp already committed here, without the
        side effects of redelivering the op itself."""
        client, req = request.get("peek_client"), request.get("peek_req")
        if not isinstance(client, str) or not isinstance(req, int):
            raise ReproError("ledger_peek needs 'peek_client' and 'peek_req'")
        try:
            cached = self.ledger.replay(client, req)
        except LedgerError:
            # The stamp is behind this client's high-water mark: the
            # original ack exists but was evicted.  Report a miss with
            # the superseded flag so the caller can distinguish.
            return {"ok": True, "hit": False, "superseded": True}
        if cached is None:
            return {"ok": True, "hit": False}
        return {"ok": True, "hit": True, "result": cached}


def _predicate_from(equals: dict[str, Any] | None) -> Predicate | None:
    """Column=value conjunction; JSON null means IS NULL."""
    if not equals:
        return None
    parts: list[Predicate] = [
        IsNull(column) if value is None else Eq(column, value)
        for column, value in equals.items()
    ]
    return parts[0] if len(parts) == 1 else And(*parts)
