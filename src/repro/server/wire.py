"""The wire protocol: length-prefixed JSON frames.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Requests and responses are JSON objects; requests
carry an ``op`` field, responses an ``ok`` boolean (error responses add
``error``, ``error_type`` and a ``retryable`` hint — deadlock victims,
lock timeouts and admission-control rejections are retryable, integrity
vetoes are not).

SQL NULL crosses the wire as JSON ``null``: :func:`encode_row` maps the
engine's NULL sentinel to ``None`` on the way out,
:func:`decode_values` maps ``None`` back on the way in.  Clients
therefore speak plain Python (``None`` for missing foreign-key
components) and never import engine internals.
"""

from __future__ import annotations

import json
import socket
import struct
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    import asyncio

from ..errors import ReproError
from ..nulls import NULL
from ..testing.faults import fire

#: Frames above this are refused outright — a corrupt length prefix
#: must not make the receiver try to allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ReproError):
    """A malformed, oversized or truncated frame."""


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Serialise *message* and write one frame."""
    fire("wire.send")
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds the cap")
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; None on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame; refusing")
    payload = _recv_exact(sock, length, eof_ok=False)
    assert payload is not None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise WireError(f"frame is not an object: {message!r}")
    return message


def _recv_exact(sock: socket.socket, n: int, eof_ok: bool) -> bytes | None:
    chunks = []
    remaining = n
    while remaining:
        # Fired per chunk, not per frame, so an injector can tear a
        # frame mid-payload — the failure the retry protocol must survive.
        fire("wire.recv")
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise WireError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Asyncio twins: same frames, same fault points, stream API
#
# The asyncio server reads and writes frames on ``asyncio`` streams; the
# framing, the size cap and — crucially — the fault-injection points are
# identical to the blocking helpers above, so every torn-frame chaos
# scenario exercises both transports the same way.


async def read_frame(reader: "asyncio.StreamReader") -> dict[str, Any] | None:
    """Async :func:`recv_frame`: one frame, or None on clean EOF."""
    header = await _read_exact(reader, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"peer announced a {length}-byte frame; refusing")
    payload = await _read_exact(reader, length, eof_ok=False)
    assert payload is not None
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise WireError(f"frame is not an object: {message!r}")
    return message


async def _read_exact(
    reader: "asyncio.StreamReader", n: int, eof_ok: bool
) -> bytes | None:
    chunks = []
    remaining = n
    while remaining:
        # Same per-chunk fault point as the blocking reader: an injector
        # can tear a frame mid-payload on either transport.
        fire("wire.recv")
        chunk = await reader.read(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise WireError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


async def write_frame(
    writer: "asyncio.StreamWriter", message: dict[str, Any]
) -> None:
    """Async :func:`send_frame`: serialise *message* and write one frame.

    Awaits ``drain()`` so backpressure from a stalled reader surfaces
    here — callers bound it with ``asyncio.wait_for`` to implement the
    send timeout.
    """
    fire("wire.send")
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds the cap")
    writer.write(_LENGTH.pack(len(payload)) + payload)
    await writer.drain()


# ----------------------------------------------------------------------
# Value translation: engine NULL <-> JSON null


def encode_value(value: Any) -> Any:
    return None if value is NULL else value


def encode_row(row: Sequence[Any]) -> list[Any]:
    return [encode_value(v) for v in row]


def decode_value(value: Any) -> Any:
    return NULL if value is None else value


def decode_values(values: Sequence[Any]) -> list[Any]:
    return [decode_value(v) for v in values]
