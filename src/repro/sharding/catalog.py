"""The shard catalog: which shard owns which rows of which table.

Tables are hash-partitioned on their **FK-prefix**: a parent table
partitions on its referenced candidate key, and a child table partitions
on its foreign-key columns.  Because both sides hash the *same* value
tuple, a child row whose FK components are all non-NULL lands on the
same shard as its witness parent — the common case commits one-phase,
and only MATCH PARTIAL rows with NULL components (whose witness may
live anywhere) need a cross-shard two-phase commit.

Hashing must agree across processes and restarts, so it is crc32 over a
canonical JSON rendering of the partition values — Python's ``hash()``
is salted per process and would route every restart differently.
"""

from __future__ import annotations

import json
import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..errors import ReproError


class CatalogError(ReproError):
    """A table or column the catalog does not know about."""


def stable_hash(values: Sequence[Any]) -> int:
    """Deterministic cross-process hash of a partition-value tuple.

    ``None`` (SQL NULL) is a first-class input: a child row with NULL FK
    components still needs a stable home shard.
    """
    payload = json.dumps(list(values), separators=(",", ":"), sort_keys=False,
                         default=str)
    return zlib.crc32(payload.encode("utf-8"))


@dataclass(frozen=True)
class FkRoute:
    """One enforced foreign key, as the coordinator routes it."""

    parent_table: str
    parent_key: tuple[str, ...]
    child_columns: tuple[str, ...]
    set_null: bool = True

    def parent_equals(self, child_row: Mapping[str, Any]) -> dict[str, Any]:
        """The non-NULL FK components of *child_row*, keyed by the
        parent columns they reference (the witness-probe predicate)."""
        return {
            parent_col: child_row[child_col]
            for child_col, parent_col in zip(self.child_columns, self.parent_key)
            if child_row.get(child_col) is not None
        }


@dataclass(frozen=True)
class TableRoute:
    """Partitioning metadata for one table."""

    name: str
    columns: tuple[str, ...]
    partition: tuple[str, ...]
    fk: FkRoute | None = None
    #: Column whose values identify rows in operator reports (orphan
    #: listings); falls back to the first column when unset.
    id_column: str | None = None

    def row_mapping(self, values: Sequence[Any]) -> dict[str, Any]:
        if len(values) != len(self.columns):
            raise CatalogError(
                f"table {self.name!r} takes {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return dict(zip(self.columns, values))


@dataclass(frozen=True)
class ShardCatalog:
    """Maps tables to shards for a fixed shard count."""

    shards: int
    tables: dict[str, TableRoute] = field(default_factory=dict)

    def route(self, table: str) -> TableRoute:
        entry = self.tables.get(table)
        if entry is None:
            raise CatalogError(f"table {table!r} is not in the shard catalog")
        return entry

    def shard_for(self, table: str, row: Mapping[str, Any]) -> int:
        """The shard owning *row* (a column→value mapping; NULL is
        ``None``).  Every partition column must be present."""
        entry = self.route(table)
        try:
            values = [row[column] for column in entry.partition]
        except KeyError as exc:
            raise CatalogError(
                f"cannot route {table!r}: partition column {exc} missing"
            ) from exc
        return stable_hash(values) % self.shards

    def fk_of(self, table: str) -> FkRoute | None:
        return self.route(table).fk

    def children_of(self, parent: str) -> list[tuple[str, FkRoute]]:
        return [
            (entry.name, entry.fk)
            for entry in self.tables.values()
            if entry.fk is not None and entry.fk.parent_table == parent
        ]

    def is_parent(self, table: str) -> bool:
        return bool(self.children_of(table))


def build_chaos_catalog(shards: int) -> ShardCatalog:
    """The catalog for the chaos soak's P/C MATCH PARTIAL pair.

    Parent ``P`` partitions on its primary key ``(k1, k2)``; child ``C``
    partitions on its FK columns ``(k1, k2)`` — fully-referencing
    children co-locate with their witness parent.
    """
    fk = FkRoute(
        parent_table="P",
        parent_key=("k1", "k2"),
        child_columns=("k1", "k2"),
        set_null=True,
    )
    return ShardCatalog(
        shards=shards,
        tables={
            "P": TableRoute("P", ("k1", "k2"), ("k1", "k2")),
            "C": TableRoute("C", ("id", "k1", "k2"), ("k1", "k2"),
                            fk=fk, id_column="id"),
        },
    )
