"""Sharded serving: FK-prefix partitioning, remote witness probes and
presumed-abort two-phase commit (DESIGN.md §5i).

:mod:`~repro.sharding.catalog` maps tables to shards, co-locating fully
referencing child rows with their witness parents; only MATCH PARTIAL
rows with NULL FK components ever need the cross-shard path.
:mod:`~repro.sharding.twophase` is the participant living inside each
:class:`~repro.server.server.ReproServer`; :mod:`~repro.sharding.coordinator`
is the router/commit point clients connect to.
"""

from .catalog import (
    CatalogError,
    FkRoute,
    ShardCatalog,
    TableRoute,
    build_chaos_catalog,
    stable_hash,
)
from .coordinator import DecisionLog, ShardCoordinator
from .twophase import (
    TwoPhaseError,
    TwoPhaseMarker,
    TwoPhaseParticipant,
    apply_shard_op,
)

__all__ = [
    "CatalogError",
    "DecisionLog",
    "FkRoute",
    "ShardCatalog",
    "ShardCoordinator",
    "TableRoute",
    "TwoPhaseError",
    "TwoPhaseMarker",
    "TwoPhaseParticipant",
    "apply_shard_op",
    "build_chaos_catalog",
    "stable_hash",
]
