"""The shard coordinator: router, witness prober and 2PC commit point.

One coordinator process fronts N :class:`~repro.server.server.ReproServer`
shards (DESIGN.md §5i).  It speaks the same length-prefixed JSON protocol
as the shards, so the existing :class:`~repro.server.client.ReproClient`
(with its exactly-once stamps) talks to a sharded deployment unchanged.

Routing (:mod:`repro.sharding.catalog`): tables hash-partition on their
FK-prefix, so a child row whose FK components are all non-NULL co-locates
with its witness parent and commits **one-phase** — a single ``txn`` op
(witness pin + insert) on the home shard, ledgered under the client's own
stamp.  Only a MATCH PARTIAL child row with NULL components may find its
witness on a foreign shard: the coordinator scatter-probes a snapshot
witness, then runs **presumed-abort two-phase commit** — PREPARE the pin
on the witness shard and the insert on the home shard (each durably
logged by the participant before it votes), write the COMMIT decision to
the coordinator's own :class:`DecisionLog` segment store, and only then
acknowledge the client and push the decides.

Presumed abort means only COMMIT decisions are logged.  ``resolve``
answers a participant asking about an in-doubt transaction: a logged
decision is ``commit``; a transaction still being prepared is
``pending``; anything else — including every gtid of a previous
coordinator incarnation (gtids carry an epoch) — is ``abort``.

Exactly-once across the extra hop: deterministic routes (plain forwards,
co-located ``txn`` ops) redeliver under the client's original stamp and
replay from the shard's result ledger.  Non-deterministic routes (2PC,
cascades — a re-probe may pick a different witness shard) replay from the
decision log by ``(client, req)`` base, falling back to a scatter
``ledger_peek`` for acks that committed one-phase before a coordinator
crash.  When the coordinator cannot rule out that a forwarded stamp
committed (partial scatter, torn shard link), it **tears the client
connection instead of answering** — an error reply would falsely promise
"not committed".

Cascaded SET NULL on a parent delete is planned coordinator-side:
delete + full-match NULL-out on the parent's shard, then one NULL-out
batch per orphaned single-column pattern on that pattern's home shard,
all under one global transaction.  Concurrent cascades over overlapping
patterns serialise on coordinator-local pattern locks; after a restart a
short ``cascade_grace`` pause lets pre-crash in-doubt cascades resolve
before new pattern probes can read stale survivors.  Cross-shard
deadlocks (a cascade and a 2PC insert locking the same keys from
opposite ends) have no global detector — the shards' lock timeout is the
backstop, surfacing as a retryable error the client re-runs.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
import uuid
from collections import deque
from collections.abc import Callable, Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from ..errors import (
    ReferentialIntegrityViolation,
    ReproError,
    TransactionStateError,
    TransientFault,
)
from ..server import wire
from ..server.client import DeliveryUnknown, ReproClient, ServerError
from ..server.server import _RETRYABLE, Overloaded
from .catalog import FkRoute, ShardCatalog
from .twophase import TwoPhaseError

#: How often blocked accept/recv loops wake to check for shutdown.
_POLL_S = 0.2

#: A stalled reply send disconnects the reader instead of pinning us.
_SEND_TIMEOUT = 10.0

#: Per-shard retries of a retryable error inside one scatter pass.
_SCATTER_ATTEMPTS = 4

#: Pause after a restart before new cascades may probe patterns, so
#: pre-crash in-doubt cascades resolve first (see module docstring).
DEFAULT_CASCADE_GRACE = 2.0


class CoordinatorStats:
    """Thread-safe counters exposed by the coordinator's ``stats`` op."""

    _FIELDS = (
        "requests", "errors", "teardowns", "replays", "forwards",
        "scatters", "one_phase", "commits_2pc", "aborts_2pc", "cascades",
        "decide_errors",
    )

    def __init__(self) -> None:
        self._mu = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, by: int = 1) -> None:
        with self._mu:
            setattr(self, name, getattr(self, name) + by)

    def snapshot(self) -> dict[str, int]:
        with self._mu:
            return {name: getattr(self, name) for name in self._FIELDS}


class DecisionLog:
    """The coordinator's durable presumed-abort decision log.

    Records only COMMIT decisions — ``{gtid, base, result}`` — through a
    :class:`~repro.storage.segments.SegmentStore` (fsync before return,
    i.e. before any client ack).  ``base`` is the client's exactly-once
    stamp, making the log double as the coordinator's result ledger for
    non-deterministically-routed requests.  With no ``data_dir`` the log
    is memory-only (single-process tests).
    """

    def __init__(self, data_dir: str | None) -> None:
        self._mu = threading.Lock()
        self._by_gtid: dict[str, dict[str, Any]] = {}
        self._by_base: dict[tuple[str, int], dict[str, Any]] = {}
        self._store = None
        if data_dir is not None:
            from ..storage.segments import SegmentStore

            self._store = SegmentStore(data_dir)
            payloads, __ = self._store.load()  # a torn tail was never acked
            for blob in payloads:
                self._index(pickle.loads(blob))
        #: Did this incarnation inherit decisions from a predecessor?
        self.resumed = bool(self._by_gtid)

    def _index(self, entry: dict[str, Any]) -> None:
        self._by_gtid[entry["gtid"]] = entry
        base = entry.get("base")
        if base is not None:
            self._by_base[(base[0], base[1])] = entry

    def record_decision(
        self,
        gtid: str,
        base: tuple[str, int] | None,
        result: dict[str, Any],
    ) -> dict[str, Any]:
        """Durably log the COMMIT decision for *gtid*.  Returns only
        after the record is fsynced — callers ack strictly after this."""
        entry = {"gtid": gtid, "base": base, "result": result}
        with self._mu:
            if self._store is not None:
                self._store.append([pickle.dumps(entry)])
            self._index(entry)
        return entry

    def logged_decision(
        self, gtid: str | None = None, *, base: tuple[str, int] | None = None
    ) -> dict[str, Any] | None:
        with self._mu:
            if gtid is not None:
                return self._by_gtid.get(gtid)
            if base is not None:
                return self._by_base.get((base[0], base[1]))
        return None

    def __len__(self) -> int:
        with self._mu:
            return len(self._by_gtid)


class _Tear(Exception):
    """Close the client connection *without replying*: the request may
    have committed somewhere, so an error reply (which promises "not
    committed") would lie.  The client's redelivery disambiguates."""


@dataclass
class _ConnState:
    """Per-connection coordinator state (the buffered transaction)."""

    session_id: int
    in_txn: bool = False
    txn_id: int = 0
    buffer: list[dict[str, Any]] = field(default_factory=list)


class ShardCoordinator:
    """Serve a sharded database behind one wire endpoint."""

    def __init__(
        self,
        catalog: ShardCatalog,
        shard_addrs: Sequence[tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: str | None = None,
        cascade_grace: float = DEFAULT_CASCADE_GRACE,
    ) -> None:
        if len(shard_addrs) != catalog.shards:
            raise ReproError(
                f"catalog wants {catalog.shards} shards, "
                f"got {len(shard_addrs)} addresses"
            )
        self.catalog = catalog
        self.shard_addrs = [(h, int(p)) for h, p in shard_addrs]
        self.host = host
        self._requested_port = port
        self.stats = CoordinatorStats()
        self.decisions = DecisionLog(data_dir)
        #: Each incarnation gets a fresh epoch: gtids of a dead
        #: coordinator are recognisably stale and resolve to abort.
        self.epoch = uuid.uuid4().hex[:8]
        self._gtid_n = 0
        self._gtid_mu = threading.Lock()
        self._in_flight: set[str] = set()
        self._in_flight_mu = threading.Lock()
        #: Per-client acked high-water mark: requests above it are fresh
        #: and skip the replay lookups.  Lost on restart (then every
        #: client's first request pays one lookup, on purpose).
        self._client_high: dict[str, int] = {}
        self._client_mu = threading.Lock()
        #: Single-flight gate per request stamp: two copies of the same
        #: (client, req) — a client-level redelivery racing an attempt
        #: still blocked in a patient shard link — must never execute
        #: concurrently.  The loser would answer from a world that does
        #: not yet include the winner's work, e.g. a retryable "shard
        #: unreachable" while the first copy goes on to commit — and a
        #: retryable error reply promises "nothing committed", so the
        #: client retries under a FRESH stamp and the ledger can no
        #: longer dedupe.  Entries are (lock, refcount), pruned at zero.
        self._base_gate: dict[tuple[str, int], list[Any]] = {}
        self._base_gate_mu = threading.Lock()
        # Coordinator-local cascade pattern locks (all-or-nothing,
        # sorted keys => deadlock-free).
        self._pattern_cv = threading.Condition(threading.Lock())
        self._pattern_held: set[str] = set()
        # Async decide pushes (the ack never waits on them).
        self._push_q: deque[tuple[str, int, str]] = deque()
        self._push_cv = threading.Condition(threading.Lock())
        self._push_thread: threading.Thread | None = None
        self._local = threading.local()
        self._clients: list[ReproClient] = []
        self._clients_mu = threading.Lock()
        self.cascade_grace = cascade_grace
        self._grace_until = 0.0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: list[threading.Thread] = []
        self._handlers_mu = threading.Lock()
        self._stopping = threading.Event()
        self._started = False
        self._conn_n = 0

    # ------------------------------------------------------------------
    # Lifecycle

    @property
    def port(self) -> int:
        if self._listener is None:
            raise ReproError("coordinator is not started")
        return self._listener.getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "ShardCoordinator":
        if self._started:
            raise ReproError("coordinator already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(64)
        listener.settimeout(_POLL_S)
        self._listener = listener
        self._started = True
        if self.decisions.resumed:
            self._grace_until = time.monotonic() + self.cascade_grace
        self._push_thread = threading.Thread(
            target=self._push_loop, name="repro-coord-push", daemon=True
        )
        self._push_thread.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coord-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def shutdown(self, timeout: float = 10.0) -> None:
        if not self._started:
            return
        self._stopping.set()
        with self._push_cv:
            self._push_cv.notify_all()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        with self._handlers_mu:
            handlers = list(self._handlers)
        for thread in handlers:
            thread.join(timeout)
        if self._push_thread is not None:
            self._push_thread.join(timeout)
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        with self._clients_mu:
            clients, self._clients = self._clients, []
        for client in clients:
            client.close()
        self._started = False

    def __enter__(self) -> "ShardCoordinator":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Accept / per-connection loops

    def _accept_loop(self) -> None:
        from ..testing.faults import fire

        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, __ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                fire("wire.accept")
            except ReproError:
                self.stats.bump("errors")
                conn.close()
                continue
            self._conn_n += 1
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn, self._conn_n),
                name=f"repro-coord-conn-{self._conn_n}",
                daemon=True,
            )
            with self._handlers_mu:
                self._handlers.append(thread)
            thread.start()

    def _handle_connection(self, conn: socket.socket, conn_id: int) -> None:
        conn.settimeout(_POLL_S)
        state = _ConnState(session_id=conn_id)
        try:
            while not self._stopping.is_set():
                try:
                    request = wire.recv_frame(conn)
                except socket.timeout:
                    continue
                except (wire.WireError, OSError):
                    break
                if request is None:
                    break
                conn.settimeout(_SEND_TIMEOUT)
                try:
                    response = self._dispatch(state, request)
                except _Tear:
                    self.stats.bump("teardowns")
                    break
                except DeliveryUnknown:
                    # Backstop: an unwrapped torn shard exchange can
                    # never become an error reply (it would falsely
                    # promise "not committed") — tear instead.
                    self.stats.bump("teardowns")
                    break
                except Exception as exc:  # noqa: BLE001 - boundary
                    response = self._error_response(exc)
                if "id" in request:
                    # Pipelined clients pair replies by id; copy so a
                    # shard-cached reply dict is not mutated.
                    response = {**response, "id": request["id"]}
                try:
                    wire.send_frame(conn, response)
                except (socket.timeout, OSError):
                    break
                finally:
                    conn.settimeout(_POLL_S)
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._handlers_mu:
                current = threading.current_thread()
                if current in self._handlers:
                    self._handlers.remove(current)

    def _dispatch(
        self, state: _ConnState, request: dict[str, Any]
    ) -> dict[str, Any]:
        self.stats.bump("requests")
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None or not isinstance(op, str) or op.startswith("_"):
            raise ReproError(f"unknown coordinator op {op!r}")
        with self._single_flight(self._base_of(request)):
            return handler(state, request)

    @contextmanager
    def _single_flight(self, base: tuple[str, int] | None) -> Iterator[None]:
        """Serialise copies of the same stamped request.

        A redelivery (client reconnected, same stamp) must wait for the
        first copy — which may be blocked inside a patient shard link —
        rather than race it: once the copy ahead finishes, the waiter's
        ``_maybe_replay`` sees its outcome instead of inventing one.
        Distinct stamps never share a lock, so this serialises nothing
        but duplicates."""
        if base is None:
            yield
            return
        with self._base_gate_mu:
            entry = self._base_gate.get(base)
            if entry is None:
                entry = self._base_gate[base] = [threading.Lock(), 0]
            entry[1] += 1
        entry[0].acquire()
        try:
            yield
        finally:
            entry[0].release()
            with self._base_gate_mu:
                entry[1] -= 1
                if entry[1] == 0:
                    self._base_gate.pop(base, None)

    def _error_response(self, exc: Exception) -> dict[str, Any]:
        self.stats.bump("errors")
        if isinstance(exc, ServerError):
            # A shard's own judgement, passed through verbatim.
            response: dict[str, Any] = {
                "ok": False,
                "error": str(exc),
                "error_type": exc.error_type,
                "retryable": exc.retryable,
                "rolled_back": exc.rolled_back,
            }
            if exc.retry_after is not None:
                response["retry_after"] = exc.retry_after
            return response
        response = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "retryable": isinstance(exc, (*_RETRYABLE, Overloaded)),
            "rolled_back": False,
        }
        if isinstance(exc, Overloaded):
            response["retry_after"] = exc.retry_after
        return response

    # ------------------------------------------------------------------
    # Shard links

    def _shard_client(self, shard: int, patient: bool = True) -> ReproClient:
        cache = getattr(self._local, "clients", None)
        if cache is None:
            cache = self._local.clients = {}
        key = (shard, patient)
        client = cache.get(key)
        if client is None:
            host, port = self.shard_addrs[shard]
            if patient:
                client = ReproClient(
                    host, port,
                    client_id=f"coord-{self.epoch}-{shard}-{threading.get_ident()}",
                    redeliveries=8, reconnect_attempts=20,
                )
            else:
                client = ReproClient(
                    host, port, connect_timeout=1.0,
                    client_id=f"coord-push-{self.epoch}-{shard}",
                    redeliveries=2, reconnect_attempts=3,
                )
            cache[key] = client
            with self._clients_mu:
                self._clients.append(client)
        return client

    def _shard_request(
        self,
        shard: int,
        op: str,
        payload: Mapping[str, Any],
        patient: bool = True,
    ) -> dict[str, Any]:
        try:
            client = self._shard_client(shard, patient)
        except OSError as exc:
            # Nothing was sent: a retryable error reply is truthful.
            raise TransientFault(f"shard {shard} is unreachable") from exc
        return client.request(op, **payload)

    # ------------------------------------------------------------------
    # Exactly-once bookkeeping

    @staticmethod
    def _base_of(request: Mapping[str, Any]) -> tuple[str, int] | None:
        client, req = request.get("client"), request.get("req")
        if isinstance(client, str) and isinstance(req, int):
            return (client, req)
        return None

    def _note_client(self, base: tuple[str, int] | None) -> None:
        if base is None:
            return
        client, req = base
        with self._client_mu:
            if req > self._client_high.get(client, 0):
                self._client_high[client] = req

    def _maybe_replay(
        self, base: tuple[str, int] | None, peek: bool = True
    ) -> dict[str, Any] | None:
        """Replay a previously-acked result for this stamp, if any.

        Consulted only by non-deterministically-routed requests (2PC,
        cascades, commit) — a redelivery there may re-plan differently,
        so re-execution must be ruled out *before* planning.  Order:
        high-water fast path (unknown after a restart ⇒ look), then the
        durable decision log by base, then (for work that may have gone
        one-phase) a scatter ``ledger_peek`` over the shard ledgers.
        """
        if base is None:
            return None
        client, req = base
        with self._client_mu:
            high = self._client_high.get(client)
        if high is not None and req > high:
            return None
        entry = self.decisions.logged_decision(base=base)
        if entry is not None:
            self.stats.bump("replays")
            self._note_client(base)
            return {**entry["result"], "replayed": True}
        if not peek:
            return None
        for shard in range(self.catalog.shards):
            try:
                response = self._shard_request(
                    shard, "ledger_peek", {"peek_client": client, "peek_req": req}
                )
            except (DeliveryUnknown, TransientFault) as exc:
                # The peek exists because a prior attempt of this stamp
                # may have committed; while any ledger is unreachable we
                # cannot certify "not committed", so an error reply
                # (which promises exactly that, inviting a fresh-stamp
                # retry and a double apply) is off the table.  Tear and
                # let the client's same-stamp redelivery ask again.
                raise _Tear(f"ledger peek on shard {shard} tore") from exc
            if response.get("hit"):
                self.stats.bump("replays")
                self._note_client(base)
                result = response.get("result") or {"ok": True, "result_lost": True}
                return dict(result)
        return None

    # ------------------------------------------------------------------
    # Two-phase commit core

    def _next_gtid(self) -> str:
        with self._gtid_mu:
            self._gtid_n += 1
            return f"{self.epoch}:{self._gtid_n}"

    def _prepare(
        self, gtid: str, shard: int, ops: list[dict[str, Any]], seq: int = 0
    ) -> list[dict[str, Any]]:
        response = self._shard_request(shard, "prepare", {
            "gtid": gtid, "seq": seq, "ops": ops,
            "resolve": [self.host, self.port],
        })
        return response.get("results") or []

    def _two_phase(
        self,
        base: tuple[str, int] | None,
        batches: dict[int, list[dict[str, Any]]],
        make_result: Callable[[dict[int, list[dict[str, Any]]]], dict[str, Any]],
    ) -> dict[str, Any]:
        """PREPARE every batch (shard order = global lock order), then
        durably log the commit decision and ack.  Decide pushes are
        asynchronous; participants can also pull via ``resolve``."""
        gtid = self._next_gtid()
        with self._in_flight_mu:
            self._in_flight.add(gtid)
        shards = sorted(batches)
        results: dict[int, list[dict[str, Any]]] = {}
        try:
            for shard in shards:
                results[shard] = self._prepare(gtid, shard, batches[shard])
        except DeliveryUnknown as exc:
            # The torn shard may or may not hold a prepare; the abort
            # push (idempotent, "forgotten" if not) covers both.
            self._abort_two_phase(gtid, shards)
            raise TransientFault(
                f"a shard was unreachable during prepare; transaction "
                f"{gtid} aborted"
            ) from exc
        except BaseException:
            self._abort_two_phase(gtid, shards)
            raise
        result = make_result(results)
        self.decisions.record_decision(gtid, base, result)
        return self.ack_committed(gtid, shards, base, result)

    def ack_committed(
        self,
        gtid: str,
        shards: Sequence[int],
        base: tuple[str, int] | None,
        result: dict[str, Any],
    ) -> dict[str, Any]:
        """Acknowledge a committed global transaction.  Every caller
        must have written the decision record first (lint rule RPR009
        machine-checks that pairing)."""
        with self._in_flight_mu:
            self._in_flight.discard(gtid)
        self._note_client(base)
        self._queue_decides(gtid, shards, "commit")
        self.stats.bump("commits_2pc")
        return result

    def _abort_two_phase(self, gtid: str, shards: Sequence[int]) -> None:
        with self._in_flight_mu:
            self._in_flight.discard(gtid)
        self._queue_decides(gtid, shards, "abort")
        self.stats.bump("aborts_2pc")

    def _queue_decides(
        self, gtid: str, shards: Sequence[int], verdict: str
    ) -> None:
        with self._push_cv:
            for shard in shards:
                self._push_q.append((gtid, shard, verdict))
            self._push_cv.notify_all()

    def pending_decides(self) -> int:
        with self._push_cv:
            return len(self._push_q)

    def _push_loop(self) -> None:
        while True:
            with self._push_cv:
                while not self._push_q and not self._stopping.is_set():
                    self._push_cv.wait(timeout=_POLL_S)
                if not self._push_q and self._stopping.is_set():
                    return
                pending = [self._push_q.popleft() for __ in range(len(self._push_q))]
            failed = [item for item in pending if not self._push_decide(*item)]
            if failed:
                with self._push_cv:
                    self._push_q.extend(failed)
                if self._stopping.is_set():
                    return
                self._stopping.wait(0.25)

    def _push_decide(self, gtid: str, shard: int, verdict: str) -> bool:
        """Push one decision; False = retry later.  A commit push is
        gated on the logged decision — pushing an unlogged commit would
        break presumed abort."""
        if verdict == "commit" and self.decisions.logged_decision(gtid) is None:
            raise TwoPhaseError(
                f"refusing to push unlogged commit decision for {gtid!r}"
            )
        try:
            if verdict == "commit":
                self.send_commit_decide(shard, gtid)
            else:
                self.send_abort_decide(shard, gtid)
        except ServerError:
            # The participant answered: a protocol-level rejection
            # (conflicting decide) will not improve with retries.
            self.stats.bump("decide_errors")
            return True
        except (DeliveryUnknown, wire.WireError, OSError):
            return False
        return True

    def send_commit_decide(self, shard: int, gtid: str) -> None:
        self._shard_request(
            shard, "decide", {"gtid": gtid, "verdict": "commit"}, patient=False
        )

    def send_abort_decide(self, shard: int, gtid: str) -> None:
        self._shard_request(
            shard, "decide", {"gtid": gtid, "verdict": "abort"}, patient=False
        )

    # ------------------------------------------------------------------
    # Routing helpers

    def _forward(self, shard: int, request: dict[str, Any]) -> dict[str, Any]:
        """Pass a client request through untouched (keeping its stamp);
        the shard's own ledger gives it exactly-once semantics."""
        payload = {k: v for k, v in request.items() if k != "op"}
        try:
            response = self._shard_request(shard, request["op"], payload)
        except DeliveryUnknown as exc:
            raise _Tear(f"forward to shard {shard} tore") from exc
        self.stats.bump("forwards")
        self._note_client(self._base_of(request))
        return response

    def _forward_with_retry(
        self, shard: int, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Forward, absorbing retryable shard errors (same stamp: an
        error reply proved the attempt did not commit)."""
        payload = {k: v for k, v in request.items() if k != "op"}
        for attempt in range(_SCATTER_ATTEMPTS):
            try:
                return self._shard_request(shard, request["op"], payload)
            except ServerError as exc:
                if not exc.retryable or attempt == _SCATTER_ATTEMPTS - 1:
                    raise
                wait = exc.retry_after
                time.sleep(wait if wait is not None else 0.05 * (attempt + 1))
        raise AssertionError("unreachable")  # pragma: no cover

    def _one_phase(
        self,
        shard: int,
        base: tuple[str, int] | None,
        ops: list[dict[str, Any]],
    ) -> dict[str, Any]:
        """Run *ops* as one ledgered ``txn`` op on a single shard."""
        payload: dict[str, Any] = {"ops": ops}
        if base is not None:
            payload["client"], payload["req"] = base
        try:
            response = self._shard_request(shard, "txn", payload)
        except DeliveryUnknown as exc:
            raise _Tear(f"one-phase txn on shard {shard} tore") from exc
        self.stats.bump("one_phase")
        self._note_client(base)
        return response

    def _choose_witness(
        self, fk: FkRoute, equals: Mapping[str, Any]
    ) -> tuple[int, dict[str, Any]] | None:
        """Scatter-probe a snapshot witness for a partial FK match.

        Returns ``(shard, full parent key)`` — the pin re-validates the
        exact key under its S-lock, so a stale snapshot answer aborts
        retryably rather than admitting an orphan.
        """
        columns = list(fk.parent_key)
        for shard in range(self.catalog.shards):
            try:
                response = self._shard_request(shard, "select", {
                    "table": fk.parent_table, "equals": dict(equals),
                    "columns": columns, "limit": 1, "snapshot": True,
                })
            except DeliveryUnknown as exc:
                raise TransientFault(
                    f"witness probe on shard {shard} is unreachable; retry"
                ) from exc
            rows = response.get("rows") or []
            if rows:
                return shard, dict(zip(columns, rows[0]))
        return None

    def _scatter_rows(
        self,
        table: str,
        equals: dict[str, Any] | None = None,
        columns: list[str] | None = None,
        limit: int | None = None,
    ) -> list[list[Any]]:
        rows: list[list[Any]] = []
        for shard in range(self.catalog.shards):
            try:
                response = self._shard_request(shard, "select", {
                    "table": table, "equals": equals, "columns": columns,
                    "limit": limit, "snapshot": True,
                })
            except DeliveryUnknown as exc:
                raise TransientFault(
                    f"shard {shard} is unreachable during a scatter read"
                ) from exc
            rows.extend(response.get("rows") or [])
        return rows

    # ------------------------------------------------------------------
    # Client ops

    def _op_ping(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "pong": True, "session_id": state.session_id}

    def _op_insert(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        if state.in_txn:
            state.buffer.append(dict(request))
            return {"ok": True, "rid": -1, "buffered": True}
        return self._insert_routed(
            self._base_of(request), request["table"],
            list(request.get("values") or []),
        )

    def _insert_routed(
        self,
        base: tuple[str, int] | None,
        table: str,
        values: list[Any],
    ) -> dict[str, Any]:
        """Route one autocommit insert: forward, one-phase pin+insert on
        the witness's shard, or 2PC — under *base*'s exactly-once stamp."""
        request: dict[str, Any] = {"op": "insert", "table": table,
                                   "values": list(values)}
        if base is not None:
            request["client"], request["req"] = base
        route = self.catalog.route(table)
        row = route.row_mapping(values)
        fk = route.fk
        home = self.catalog.shard_for(table, row)
        if fk is None:
            return self._forward(home, request)
        witness_equals = fk.parent_equals(row)
        if not witness_equals:
            # Every FK component NULL: MATCH SIMPLE/PARTIAL admit it
            # witness-free; the shard enforces its local constraints.
            return self._forward(home, request)
        replayed = self._maybe_replay(base)
        if replayed is not None:
            return self._insert_ack(replayed)
        insert_op = {"op": "insert", "table": table, "values": list(values)}
        if len(witness_equals) == len(fk.parent_key):
            # Fully referencing ⇒ co-located with the witness by
            # construction (both sides hash the same value tuple).
            pin = {"op": "pin", "table": fk.parent_table, "equals": witness_equals}
            return self._insert_ack(self._one_phase(home, base, [pin, insert_op]))
        witness = self._choose_witness(fk, witness_equals)
        if witness is None:
            raise ReferentialIntegrityViolation(
                f"no row of {fk.parent_table!r} matches {witness_equals!r}; "
                f"insert into {table!r} vetoed"
            )
        wshard, wkey = witness
        pin = {"op": "pin", "table": fk.parent_table, "equals": wkey,
               "probed": True}
        if wshard == home:
            return self._insert_ack(self._one_phase(home, base, [pin, insert_op]))
        return self._two_phase(
            base,
            {wshard: [pin], home: [insert_op]},
            lambda results: self._insert_ack({"ok": True, "results": results[home]}),
        )

    @staticmethod
    def _insert_ack(response: dict[str, Any]) -> dict[str, Any]:
        """Normalise a txn/2PC/replayed result to the client's insert
        ack shape (``rid``)."""
        if "rid" in response:
            return response
        out: dict[str, Any] = {"ok": True, "rid": -1}
        for item in response.get("results") or []:
            if isinstance(item, dict) and item.get("op") == "insert":
                out["rid"] = item["rid"]
                break
        else:
            if response.get("result_lost"):
                out["result_lost"] = True
        if response.get("replayed"):
            out["replayed"] = True
        return out

    def _op_batch(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        """Route a multi-row insert batch.

        Co-located batches — every row homes on one shard and none is
        *partially* referencing (those need a scatter witness probe and
        possibly a foreign-shard pin) — ship as a single ledgered ``txn``
        op: one pin per distinct witness key, then one vectorized
        ``batch`` op, all under the client's own stamp.  Anything else
        falls back to per-row routing under **derived stamps**
        ``(client#b<req>, i+1)``: a redelivered batch replays each row
        from the shard ledgers / decision log, so rows committed before
        a tear are never applied twice.
        """
        table = request["table"]
        rows_field = request.get("rows")
        if not isinstance(rows_field, list):
            raise ReproError("batch needs a 'rows' list")
        if state.in_txn:
            raise TransactionStateError(
                "batch inside an explicit sharded transaction is not "
                "supported; run it autocommit"
            )
        base = self._base_of(request)
        if not rows_field:
            self._note_client(base)
            return {"ok": True, "rids": [], "rowcount": 0}
        route = self.catalog.route(table)
        fk = route.fk
        homes: set[int] = set()
        pins: list[dict[str, Any]] = []
        seen_pins: set[tuple[tuple[str, Any], ...]] = set()
        colocated = True
        for values in rows_field:
            row = route.row_mapping(values)
            homes.add(self.catalog.shard_for(table, row))
            if fk is None:
                continue
            witness_equals = fk.parent_equals(row)
            if not witness_equals:
                continue
            if len(witness_equals) < len(fk.parent_key):
                colocated = False
                continue
            pin_key = tuple(sorted(witness_equals.items()))
            if pin_key not in seen_pins:
                seen_pins.add(pin_key)
                pins.append({"op": "pin", "table": fk.parent_table,
                             "equals": witness_equals})
        if colocated and len(homes) == 1:
            replayed = self._maybe_replay(base)
            if replayed is not None:
                return self._batch_ack(replayed)
            batch_op = {"op": "batch", "table": table,
                        "rows": [list(r) for r in rows_field]}
            (home,) = homes
            return self._batch_ack(
                self._one_phase(home, base, [*pins, batch_op])
            )
        return self._batch_per_row(base, table, rows_field)

    @staticmethod
    def _batch_ack(response: dict[str, Any]) -> dict[str, Any]:
        """Normalise a txn/replayed result to the client's batch ack
        shape (``rids``)."""
        if "rids" in response:
            return response
        out: dict[str, Any] = {"ok": True, "rids": [], "rowcount": 0}
        for item in response.get("results") or []:
            if isinstance(item, dict) and item.get("op") == "batch":
                out["rids"] = list(item["rids"])
                out["rowcount"] = len(out["rids"])
                break
        else:
            if response.get("result_lost"):
                out["result_lost"] = True
        if response.get("replayed"):
            out["replayed"] = True
        return out

    def _batch_per_row(
        self,
        base: tuple[str, int] | None,
        table: str,
        rows: list[Any],
    ) -> dict[str, Any]:
        """Cross-shard fallback: one routed insert per row.

        Each row gets a deterministic derived stamp, so the whole batch
        is replayable row-by-row.  A failure after the first committed
        row tears the connection — an error reply would falsely promise
        "nothing committed" for a batch that partially did."""
        rids: list[int] = []
        for i, values in enumerate(rows):
            derived = (
                (f"{base[0]}#b{base[1]}", i + 1) if base is not None else None
            )
            try:
                response = self._insert_routed(derived, table, list(values))
            except (_Tear, DeliveryUnknown):
                raise
            except Exception:
                if rids:
                    raise _Tear(
                        f"batch row {i} failed after {len(rids)} row(s) "
                        "committed"
                    ) from None
                raise
            rids.append(int(response.get("rid", -1)))
        self._note_client(base)
        return {"ok": True, "rids": rids, "rowcount": len(rids)}

    def _op_delete(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        if state.in_txn:
            raise TransactionStateError(
                "delete inside an explicit sharded transaction is not "
                "supported; run it autocommit"
            )
        table = request["table"]
        equals = request.get("equals") or {}
        base = self._base_of(request)
        if self.catalog.is_parent(table):
            return self._cascade_delete(base, table, equals)
        route = self.catalog.route(table)
        if all(column in equals for column in route.partition):
            return self._forward(self.catalog.shard_for(table, equals), request)
        return self._scatter_mutation(base, request)

    def _op_update(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        if state.in_txn:
            raise TransactionStateError(
                "update inside an explicit sharded transaction is not "
                "supported; run it autocommit"
            )
        table = request["table"]
        route = self.catalog.route(table)
        assignments = request.get("assignments") or {}
        guarded = set(route.partition) | set(
            route.fk.child_columns if route.fk else ()
        )
        touched = guarded & set(assignments)
        if touched:
            raise ReproError(
                f"updating partition/FK columns {sorted(touched)} of "
                f"{table!r} through the coordinator is not supported"
            )
        equals = request.get("equals") or {}
        base = self._base_of(request)
        if all(column in equals for column in route.partition):
            return self._forward(self.catalog.shard_for(table, equals), request)
        return self._scatter_mutation(base, request)

    def _scatter_mutation(
        self, base: tuple[str, int] | None, request: dict[str, Any]
    ) -> dict[str, Any]:
        """Run a stamped mutation on every shard.  Each shard ledgers
        the same stamp independently, so a redelivered scatter replays
        per shard.  After the first shard succeeds, any failure tears
        the connection — partial scatter state must not be mistaken for
        "did not commit"."""
        total = 0
        succeeded = 0
        for shard in range(self.catalog.shards):
            try:
                response = self._forward_with_retry(shard, request)
            except DeliveryUnknown as exc:
                raise _Tear(f"scatter to shard {shard} tore") from exc
            except ServerError:
                if succeeded:
                    raise _Tear(
                        f"scatter failed on shard {shard} after "
                        f"{succeeded} shard(s) committed"
                    ) from None
                raise
            total += int(response.get("rowcount") or 0)
            succeeded += 1
        self.stats.bump("scatters")
        self._note_client(base)
        return {"ok": True, "rowcount": total}

    def _op_select(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        table = request["table"]
        equals = request.get("equals") or {}
        route = self.catalog.route(table)
        if all(column in equals for column in route.partition):
            return self._forward(self.catalog.shard_for(table, equals), request)
        limit = request.get("limit")
        payload = {k: v for k, v in request.items() if k != "op"}
        rows: list[list[Any]] = []
        for shard in range(self.catalog.shards):
            try:
                response = self._shard_request(shard, "select", payload)
            except DeliveryUnknown as exc:
                raise TransientFault(
                    f"shard {shard} is unreachable during scatter select"
                ) from exc
            rows.extend(response.get("rows") or [])
            if limit is not None and len(rows) >= limit:
                rows = rows[:limit]
                break
        return {"ok": True, "rows": rows}

    # ------------------------------------------------------------------
    # Explicit transactions (buffered, planned at commit)

    def _op_begin(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        if state.in_txn:
            raise TransactionStateError("transaction already open")
        state.in_txn = True
        state.buffer = []
        state.txn_id += 1
        return {"ok": True, "txn_id": state.txn_id}

    def _op_rollback(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        state.in_txn = False
        state.buffer = []
        return {"ok": True}

    def _op_commit(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        base = self._base_of(request)
        if not state.in_txn:
            # A redelivered commit lands on a fresh connection; the
            # decision log / shard ledgers say whether the original
            # committed before the cut.
            replayed = self._maybe_replay(base)
            if replayed is not None:
                return {"ok": True, "replayed": True}
            raise TransactionStateError("no transaction to commit")
        buffered, state.buffer = state.buffer, []
        state.in_txn = False
        if not buffered:
            self._note_client(base)
            return {"ok": True}
        batches: dict[int, list[dict[str, Any]]] = {}
        for buffered_request in buffered:
            self._plan_buffered_insert(buffered_request, batches)
        if len(batches) == 1:
            ((shard, ops),) = batches.items()
            self._one_phase(shard, base, ops)
            return {"ok": True}
        self._two_phase(base, batches, lambda results: {"ok": True})
        return {"ok": True}

    def _plan_buffered_insert(
        self,
        request: dict[str, Any],
        batches: dict[int, list[dict[str, Any]]],
    ) -> None:
        table = request["table"]
        values = request.get("values") or []
        route = self.catalog.route(table)
        row = route.row_mapping(values)
        fk = route.fk
        home = self.catalog.shard_for(table, row)
        insert_op = {"op": "insert", "table": table, "values": list(values)}
        if fk is None:
            batches.setdefault(home, []).append(insert_op)
            return
        witness_equals = fk.parent_equals(row)
        if not witness_equals:
            batches.setdefault(home, []).append(insert_op)
            return
        if len(witness_equals) == len(fk.parent_key):
            pin = {"op": "pin", "table": fk.parent_table, "equals": witness_equals}
            batches.setdefault(home, []).extend([pin, insert_op])
            return
        witness = self._choose_witness(fk, witness_equals)
        if witness is None:
            raise ReferentialIntegrityViolation(
                f"no row of {fk.parent_table!r} matches {witness_equals!r}; "
                f"transaction vetoed"
            )
        wshard, wkey = witness
        pin = {"op": "pin", "table": fk.parent_table, "equals": wkey,
               "probed": True}
        batches.setdefault(wshard, []).append(pin)
        batches.setdefault(home, []).append(insert_op)

    # ------------------------------------------------------------------
    # Cascaded SET NULL (parent delete)

    @contextmanager
    def _pattern_locks(self, keys: set[str]) -> Iterator[None]:
        """All-or-nothing acquisition in sorted order: deadlock-free."""
        ordered = sorted(keys)
        with self._pattern_cv:
            while any(key in self._pattern_held for key in ordered):
                self._pattern_cv.wait(timeout=_POLL_S)
            self._pattern_held.update(ordered)
        try:
            yield
        finally:
            with self._pattern_cv:
                self._pattern_held.difference_update(ordered)
                self._pattern_cv.notify_all()

    def _cascade_delete(
        self,
        base: tuple[str, int] | None,
        table: str,
        equals: dict[str, Any],
    ) -> dict[str, Any]:
        route = self.catalog.route(table)
        children = self.catalog.children_of(table)
        missing = set(route.partition) - set(equals)
        if missing:
            raise ReproError(
                f"parent delete must name the full partition key of "
                f"{table!r}; missing {sorted(missing)}"
            )
        extra = set(equals) - set(route.partition)
        if extra:
            raise ReproError(
                f"parent delete supports only the exact key predicate; "
                f"unexpected columns {sorted(extra)}"
            )
        for __, fk in children:
            if len(fk.parent_key) > 2:
                raise ReproError(
                    "cascaded SET NULL through the coordinator supports "
                    "FK keys of at most 2 columns"
                )
        replayed = self._maybe_replay(base, peek=False)
        if replayed is not None:
            return replayed
        if time.monotonic() < self._grace_until:
            raise Overloaded(
                "cascades are settling after a coordinator restart; retry",
                retry_after=0.5,
            )
        key = {column: equals[column] for column in route.partition}
        lock_keys = {f"{table}|" + "|".join(f"{c}={key[c]!r}" for c in route.partition)}
        for child, fk in children:
            for pcol in fk.parent_key:
                lock_keys.add(f"{child}|{pcol}={key[pcol]!r}")
        with self._pattern_locks(lock_keys):
            return self._cascade_locked(base, table, key, children)

    def _cascade_locked(
        self,
        base: tuple[str, int] | None,
        table: str,
        key: dict[str, Any],
        children: list[tuple[str, FkRoute]],
    ) -> dict[str, Any]:
        self.stats.bump("cascades")
        pshard = self.catalog.shard_for(table, key)
        gtid = self._next_gtid()
        with self._in_flight_mu:
            self._in_flight.add(gtid)
        prepared: list[int] = [pshard]
        try:
            parent_ops: list[dict[str, Any]] = [
                {"op": "delete", "table": table, "equals": dict(key)},
            ]
            for child, fk in children:
                if not fk.set_null:
                    continue
                full_match = {
                    c: key[p] for c, p in zip(fk.child_columns, fk.parent_key)
                }
                parent_ops.append({
                    "op": "update", "table": child,
                    "assignments": {c: None for c in fk.child_columns},
                    "equals": full_match,
                })
            results = self._prepare(gtid, pshard, parent_ops, seq=0)
            rowcount = int(results[0].get("rowcount") or 0)
            if rowcount == 0:
                # Someone else already deleted it; nothing cascades.
                self._abort_two_phase(gtid, prepared)
                self._note_client(base)
                return {"ok": True, "rowcount": 0}
            pattern_batches = self._plan_pattern_updates(table, key, children)
            for shard in sorted(pattern_batches):
                seq = 1 if shard == pshard else 0
                self._prepare(gtid, shard, pattern_batches[shard], seq=seq)
                if shard not in prepared:
                    prepared.append(shard)
        except DeliveryUnknown as exc:
            self._abort_two_phase(gtid, prepared)
            raise TransientFault(
                f"a shard was unreachable during the cascade; transaction "
                f"{gtid} aborted"
            ) from exc
        except BaseException:
            self._abort_two_phase(gtid, prepared)
            raise
        result = {"ok": True, "rowcount": rowcount}
        self.decisions.record_decision(gtid, base, result)
        return self.ack_committed(gtid, prepared, base, result)

    def _plan_pattern_updates(
        self,
        table: str,
        key: dict[str, Any],
        children: list[tuple[str, FkRoute]],
    ) -> dict[int, list[dict[str, Any]]]:
        """NULL-out batches for single-column MATCH PARTIAL patterns
        that the deleted parent was the last witness of."""
        batches: dict[int, list[dict[str, Any]]] = {}
        for child, fk in children:
            if not fk.set_null or len(fk.parent_key) < 2:
                continue
            for pos, pcol in enumerate(fk.parent_key):
                if self._surviving_parent(table, pcol, key[pcol], key):
                    continue
                ccol = fk.child_columns[pos]
                others = [
                    fk.child_columns[i]
                    for i in range(len(fk.parent_key))
                    if i != pos
                ]
                pattern = {ccol: key[pcol], **{c: None for c in others}}
                shard = self.catalog.shard_for(child, pattern)
                batches.setdefault(shard, []).append({
                    "op": "update", "table": child,
                    "assignments": {ccol: None},
                    "equals": dict(pattern),
                })
        return batches

    def _surviving_parent(
        self, table: str, column: str, value: Any, exclude: dict[str, Any]
    ) -> bool:
        """Does any parent other than *exclude* still witness
        ``column = value``?  Snapshot reads do not see our own prepared
        delete, so the deleted key shows up and is excluded by value."""
        route = self.catalog.route(table)
        rows = self._scatter_rows(
            table, equals={column: value},
            columns=list(route.partition), limit=2,
        )
        gone = tuple(exclude[c] for c in route.partition)
        return any(tuple(row) != gone for row in rows)

    # ------------------------------------------------------------------
    # Introspection ops

    def _op_resolve(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        gtid = request.get("gtid")
        if not isinstance(gtid, str):
            raise ReproError("resolve needs a 'gtid' string")
        if self.decisions.logged_decision(gtid) is not None:
            verdict = "commit"
        else:
            with self._in_flight_mu:
                in_flight = gtid in self._in_flight
            # Presumed abort: unlogged and not in flight (including any
            # gtid of a previous epoch) aborts.
            verdict = "pending" if in_flight else "abort"
        return {"ok": True, "verdict": verdict}

    def _op_verify(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        clean = True
        problems = 0
        reports: list[str] = []
        for shard in range(self.catalog.shards):
            try:
                response = self._shard_request(shard, "verify", {})
            except DeliveryUnknown as exc:
                raise TransientFault(
                    f"shard {shard} is unreachable during verify"
                ) from exc
            clean = clean and bool(response.get("clean"))
            problems += int(response.get("problem_count") or 0)
            reports.append(f"[shard {shard}] {response.get('report', '')}")
        orphans: list[dict[str, Any]] = []
        if request.get("deep"):
            # Cross-shard orphan scan; only meaningful on a quiescent
            # system (scatter snapshots are per-shard, not global).
            orphans = self._find_orphans()
            if orphans:
                clean = False
                problems += len(orphans)
                reports.append(f"[cross-shard] {len(orphans)} orphan(s): "
                               f"{orphans[:5]}")
        return {
            "ok": True,
            "clean": clean,
            "problem_count": problems,
            "report": "\n".join(reports),
            "orphans": orphans,
            "shards": self.catalog.shards,
        }

    def _find_orphans(self) -> list[dict[str, Any]]:
        """MATCH PARTIAL across shards: every child row with at least
        one non-NULL FK component needs a parent agreeing on exactly
        those components."""
        orphans: list[dict[str, Any]] = []
        for entry in self.catalog.tables.values():
            fk = entry.fk
            if fk is None:
                continue
            parent_rows = self._scatter_rows(
                fk.parent_table, columns=list(fk.parent_key)
            )
            parents = [tuple(row) for row in parent_rows]
            child_rows = self._scatter_rows(entry.name)
            index = {column: i for i, column in enumerate(entry.columns)}
            id_i = index[entry.id_column or entry.columns[0]]
            for row in child_rows:
                components = [
                    (pos, row[index[ccol]])
                    for pos, ccol in enumerate(fk.child_columns)
                    if row[index[ccol]] is not None
                ]
                if not components:
                    continue
                if any(
                    all(parent[pos] == value for pos, value in components)
                    for parent in parents
                ):
                    continue
                orphans.append({
                    "table": entry.name,
                    "id": row[id_i],
                    "fk": {
                        fk.child_columns[pos]: value
                        for pos, value in components
                    },
                })
        return orphans

    def _op_stats(self, state: _ConnState, request: dict[str, Any]) -> dict[str, Any]:
        shards: list[dict[str, Any]] = []
        for shard in range(self.catalog.shards):
            try:
                response = self._shard_request(shard, "stats", {}, patient=False)
            except (DeliveryUnknown, TransientFault, ServerError,
                    wire.WireError, OSError) as exc:
                shards.append({"unreachable": str(exc)})
                continue
            shards.append({k: v for k, v in response.items() if k != "ok"})
        with self._in_flight_mu:
            in_flight = len(self._in_flight)
        return {
            "ok": True,
            "coordinator": {
                **self.stats.snapshot(),
                "epoch": self.epoch,
                "in_flight": in_flight,
                "pending_decides": self.pending_decides(),
                "decisions_logged": len(self.decisions),
            },
            "shards": shards,
        }
