"""The two-phase-commit participant living inside a shard server.

Presumed-abort 2PC, participant side (DESIGN.md §5i).  The coordinator
(:mod:`repro.sharding.coordinator`) sends ``prepare`` batches — the
participant executes the batch inside an open transaction (acquiring its
2PL locks, including the FK witness S-pins), writes a durable ``prepare``
record through the shard's WAL, and only then votes.  A later ``decide``
first writes a durable ``decide`` record, then commits the data
transaction (with a :class:`TwoPhaseMarker` riding the commit record) or
rolls it back.

In-doubt state machine, as recovery sees the durable log::

    nothing            -> the txn never voted: it died with the crash,
                          the coordinator presumes abort
    prepare            -> IN DOUBT: re-execute the batch, re-acquire the
                          locks, hold them, and ask the coordinator
    prepare + decide(abort)  -> resolved abort: nothing to redo
    prepare + decide(commit) -> the decision outran the data commit:
                          re-execute and commit now (recovery window)
    prepare + decide(commit) + marker -> fully committed: redo replay
                          already restored the rows

An in-doubt transaction keeps its session (and therefore its locks)
open: conflicting writers block on the prepared keys exactly as they
would have blocked on the live transaction, which is what makes the
window safe rather than merely short.  Open prepared sessions also hold
off WAL checkpoints (a checkpoint requires no open transaction), so
``prepare`` records can never be truncated out from under an in-doubt
transaction.

Resolution is pull-based and coordinator-authoritative: a resolver
thread asks the coordinator's decision log (``resolve`` op) after
``resolve_after`` seconds.  A logged decision is final; no log entry and
not in flight means presumed abort.  Only when the coordinator stays
*unreachable* past ``presume_abort_after`` does the participant abort
unilaterally — the timeout must comfortably exceed any coordinator
restart, because a prepared vote is a promise.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..concurrency.locks import LockMode, key_resource
from ..errors import (
    ReferentialIntegrityViolation,
    ReproError,
    SerializationError,
)
from ..query import probes
from ..server import wire
from ..server.server import _predicate_from
from ..testing.faults import fire

if TYPE_CHECKING:  # pragma: no cover
    from ..concurrency.session import Session
    from ..server.server import ReproServer

#: Ask the coordinator about an in-doubt transaction after this long.
DEFAULT_RESOLVE_AFTER = 1.0

#: Abort unilaterally only after the coordinator has been *unreachable*
#: this long.  Deliberately far above any restart time: a prepared vote
#: promised the coordinator it may still commit.
DEFAULT_PRESUME_ABORT_AFTER = 120.0

#: Resolver wake-up cadence.
_POLL_S = 0.25

#: Decided gtids remembered for duplicate-decide idempotency.
_RESOLVED_MEMORY = 4096


class TwoPhaseError(ReproError):
    """A 2PC protocol violation (mismatched decide, pin outside txn...)."""


@dataclass(frozen=True)
class TwoPhaseMarker:
    """Commit-record note marking a data commit as the outcome of global
    transaction *gtid*.

    Rides the WAL commit record the same way the result ledger's entries
    do (:meth:`~repro.storage.wal.WriteAheadLog.commit`); the ledger's
    restore ignores it (it only interprets ``LedgerEntry``), while
    :meth:`TwoPhaseParticipant.reinstate` uses it to tell "decided and
    committed" apart from "decided, crashed before the data commit".
    """

    gtid: str


@dataclass
class PreparedTxn:
    """One voted-but-undecided transaction and its open session."""

    gtid: str
    session: "Session"
    resolve_addr: tuple[str, int] | None
    #: seq -> the ops of that prepare batch (idempotent redelivery key).
    batches: dict[int, list[dict[str, Any]]] = field(default_factory=dict)
    #: seq -> the acknowledged per-op results of that batch.
    results: dict[int, list[dict[str, Any]]] = field(default_factory=dict)
    prepared_at: float = 0.0
    reinstated: bool = False
    #: Serialises batch execution per transaction, so a redelivered
    #: prepare (torn reply) waits for the original instead of racing it.
    mu: threading.Lock = field(default_factory=threading.Lock)


def apply_shard_op(
    server: "ReproServer", session: "Session", op: dict[str, Any]
) -> dict[str, Any]:
    """Execute one shard-level sub-operation of a distributed transaction.

    Must run inside a statement context of *session* (the caller wraps
    the batch in :meth:`Session.execute`).  Values arrive wire-encoded,
    exactly as the coordinator forwarded them.
    """
    kind = op.get("op")
    if kind == "insert":
        values = wire.decode_values(op["values"])
        return {"op": "insert", "rid": server.db.insert(op["table"], values)}
    if kind == "delete":
        # Raw wire equals: _predicate_from turns JSON null into IS NULL.
        predicate = _predicate_from(op.get("equals"))
        count = server.db.delete_where(op["table"], predicate)
        return {"op": "delete", "rowcount": count}
    if kind == "update":
        assignments = {
            column: wire.decode_value(value)
            for column, value in op["assignments"].items()
        }
        predicate = _predicate_from(op.get("equals"))
        count = server.db.update_where(op["table"], assignments, predicate)
        return {"op": "update", "rowcount": count}
    if kind == "batch":
        rows = [wire.decode_values(r) for r in op["rows"]]
        rids = server.db.batch_insert(op["table"], rows)
        return {"op": "batch", "rids": rids}
    if kind == "pin":
        return _pin_witness(server, session, op)
    raise TwoPhaseError(f"unknown shard op {kind!r}")


def _decoded_equals(op: dict[str, Any]) -> dict[str, Any] | None:
    equals = op.get("equals")
    if not equals:
        return None
    return {column: wire.decode_value(value) for column, value in equals.items()}


def _pin_witness(
    server: "ReproServer", session: "Session", op: dict[str, Any]
) -> dict[str, Any]:
    """S-lock the exact witness key the coordinator chose and verify it.

    The remote twin of the witness pin in
    :func:`repro.concurrency.hooks.verify_parent_exists`: once the S
    grant is held, a parent-delete of this key (which needs X on the same
    key resource) blocks until our transaction decides, and any delete
    that *committed* before our grant is caught by the existence re-check
    — that raises a retryable :class:`SerializationError`, and the
    coordinator aborts the distributed transaction.
    """
    equals = _decoded_equals(op) or {}
    if not equals:
        raise TwoPhaseError("witness pin needs a non-empty 'equals' key")
    txn = session.transaction
    if txn is None or not txn.is_open:
        raise TwoPhaseError("witness pin outside an open transaction")
    columns = tuple(equals)
    values = tuple(equals[column] for column in columns)
    locks = server.sessions.locks
    resource = key_resource(op["table"], columns, values)
    locks.acquire(txn.txn_id, resource, LockMode.S)
    if locks.sanitizer is not None:
        locks.sanitizer.on_witness_pinned(txn.txn_id, resource)
    parent = server.db.table(op["table"])
    if not probes.exists_eq(parent, list(columns), list(values)):
        if op.get("probed"):
            # A snapshot probe saw this witness moments ago: it was
            # deleted in between.  Retryable — a fresh probe may find
            # another witness for the same partial match.
            raise SerializationError(
                f"witness {op['table']}{values!r} vanished before the "
                "remote pin was granted; retry with a fresh witness"
            )
        # No probe preceded (fully-referencing fast path): the key is
        # the only possible witness, and it does not exist.
        raise ReferentialIntegrityViolation(
            f"no row of {op['table']!r} matches {values!r}; insert vetoed"
        )
    return {"op": "pin", "pinned": list(values)}


class TwoPhaseParticipant:
    """Shard-side 2PC state: prepared transactions, decisions, recovery."""

    def __init__(
        self,
        server: "ReproServer",
        resolve_after: float = DEFAULT_RESOLVE_AFTER,
        presume_abort_after: float = DEFAULT_PRESUME_ABORT_AFTER,
        poll_interval: float = _POLL_S,
    ) -> None:
        self.server = server
        self.resolve_after = resolve_after
        self.presume_abort_after = presume_abort_after
        self.poll_interval = poll_interval
        self._mu = threading.Lock()
        self._prepared: dict[str, PreparedTxn] = {}
        #: gtid -> final verdict, bounded memory for duplicate decides.
        self._resolved: OrderedDict[str, str] = OrderedDict()
        self._stop = threading.Event()
        self._resolver: threading.Thread | None = None
        # Counters (exposed via the server's stats op).
        self.prepares = 0
        self.commits = 0
        self.aborts = 0
        self.presumed_aborts = 0
        self.recommitted = 0
        self.reinstated = 0
        self.forgotten_decides = 0
        self.resolve_errors = 0

    # ------------------------------------------------------------------
    # Phase one

    def prepare(
        self,
        gtid: str,
        ops: list[dict[str, Any]],
        seq: int = 0,
        resolve_addr: tuple[str, int] | None = None,
    ) -> list[dict[str, Any]]:
        """Execute a batch, write the durable prepare record, vote yes.

        Idempotent per ``(gtid, seq)``: a redelivered prepare (torn
        reply, coordinator retry onto a restarted shard) returns the
        original batch results without re-executing — a reinstated
        in-doubt transaction serves the vote it already gave.
        """
        fire("shard.prepare")
        with self._mu:
            verdict = self._resolved.get(gtid)
            if verdict is not None:
                raise TwoPhaseError(
                    f"transaction {gtid!r} was already decided ({verdict}); "
                    "it cannot be re-prepared"
                )
            txn = self._prepared.get(gtid)
            if txn is not None and seq in txn.batches:
                return txn.results[seq]
            if txn is None:
                session = self.server.sessions.session()
                session.begin()
                txn = PreparedTxn(
                    gtid, session, resolve_addr, prepared_at=time.monotonic()
                )
                self._prepared[gtid] = txn
        with txn.mu:
            with self._mu:
                if seq in txn.batches:  # redelivery raced the original
                    return txn.results[seq]
            try:
                results = txn.session.execute(
                    lambda: [
                        apply_shard_op(self.server, txn.session, op)
                        for op in ops
                    ]
                )
                wal = self.server.db.wal
                if wal is not None:
                    # The vote is a durable promise: the prepare record
                    # must survive a crash *before* the coordinator
                    # hears "yes".
                    wal.log_two_phase(
                        "prepare", (gtid, seq, list(ops), resolve_addr)
                    )
            except BaseException:
                self._drop_failed(gtid, txn)
                raise
            with self._mu:
                txn.batches[seq] = list(ops)
                txn.results[seq] = results
        self.prepares += 1
        return results

    def _drop_failed(self, gtid: str, txn: PreparedTxn) -> None:
        """A batch failed to execute: release everything and (if an
        earlier batch already voted) record the abort durably."""
        with self._mu:
            self._prepared.pop(gtid, None)
            voted_before = bool(txn.batches)
            if voted_before:
                self._remember_locked(gtid, "abort")
        if voted_before:
            wal = self.server.db.wal
            if wal is not None:
                wal.log_two_phase("decide", (gtid, "abort"))
        if txn.session.is_open:
            txn.session.close()  # rolls the open transaction back

    # ------------------------------------------------------------------
    # Phase two

    def decide(self, gtid: str, verdict: str) -> str:
        """Apply the coordinator's decision.  Durable decide record
        first, then the data commit/rollback — the ordering recovery
        relies on.  Idempotent; unknown gtids answer ``"forgotten"``
        (safe under presumed abort: a voted transaction is never
        forgotten, so "forgotten" proves nothing was prepared here)."""
        fire("shard.decide")
        if verdict not in ("commit", "abort"):
            raise TwoPhaseError(f"unknown 2PC verdict {verdict!r}")
        with self._mu:
            txn = self._prepared.pop(gtid, None)
            if txn is None:
                prior = self._resolved.get(gtid)
                if prior is not None:
                    if prior != verdict:
                        raise TwoPhaseError(
                            f"transaction {gtid!r} already resolved "
                            f"{prior!r}; conflicting decide {verdict!r}"
                        )
                    return f"already-{prior}"
                self.forgotten_decides += 1
                return "forgotten"
        # txn.mu serialises against a still-executing prepare batch (the
        # coordinator can race an abort onto a torn prepare): the
        # decision waits for the batch rather than yanking its session.
        with txn.mu:
            if not txn.session.is_open:
                # The racing batch failed and already released
                # everything (and durably recorded the abort).
                if verdict == "commit":
                    raise TwoPhaseError(
                        f"commit decision for {gtid!r} arrived after its "
                        "prepare failed"
                    )
            else:
                wal = self.server.db.wal
                if wal is not None:
                    wal.log_two_phase("decide", (gtid, verdict))
                if verdict == "commit":
                    txn.session.annotate_next_commit(TwoPhaseMarker(gtid))
                    txn.session.commit()
                    self.commits += 1
                else:
                    txn.session.rollback()
                    self.aborts += 1
                txn.session.close()
        with self._mu:
            self._remember_locked(gtid, verdict)
        return verdict

    def _remember_locked(self, gtid: str, verdict: str) -> None:
        self._resolved[gtid] = verdict
        self._resolved.move_to_end(gtid)
        while len(self._resolved) > _RESOLVED_MEMORY:
            self._resolved.popitem(last=False)

    # ------------------------------------------------------------------
    # Restart recovery

    def reinstate(self) -> int:
        """Rebuild 2PC state from the durable log after a restart.

        Redo replay already restored fully-committed work; this pass
        interprets the coordination records: finish commit-decided
        transactions whose data commit never landed, remember resolved
        verdicts, and *re-execute and hold* every in-doubt transaction so
        its locks block conflicting writers until resolution.  Must run
        before the server starts accepting connections.
        """
        wal = self.server.db.wal
        if wal is None:
            return 0
        prepares: dict[str, list[tuple[int, list[dict[str, Any]], Any]]] = {}
        order: list[str] = []
        decides: dict[str, str] = {}
        done: set[str] = set()
        for record in wal.durable_records:
            if record.kind == "prepare":
                gtid, seq, ops, resolve_addr = record.payload
                if gtid not in prepares:
                    prepares[gtid] = []
                    order.append(gtid)
                prepares[gtid].append((seq, ops, resolve_addr))
            elif record.kind == "decide":
                gtid, verdict = record.payload
                decides[gtid] = verdict
            elif (
                record.kind == "commit"
                and record.payload
                and isinstance(record.payload[0], TwoPhaseMarker)
            ):
                done.add(record.payload[0].gtid)

        in_doubt = 0
        for gtid in order:
            batches = sorted(prepares[gtid], key=lambda b: b[0])
            verdict = decides.get(gtid)
            if gtid in done or verdict == "abort":
                self._remember_locked(gtid, verdict or "commit")
                continue
            # Re-execute the voted batches in a fresh transaction.  The
            # locks re-acquire without contention: recovery runs before
            # serving, and coexisting in-doubt transactions never
            # conflict (2PL admitted them together before the crash).
            session = self.server.sessions.session()
            session.begin()
            txn = PreparedTxn(
                gtid,
                session,
                tuple(batches[0][2]) if batches[0][2] else None,
                prepared_at=time.monotonic(),
                reinstated=True,
            )
            for seq, ops, __ in batches:
                results = session.execute(
                    lambda ops=ops: [
                        apply_shard_op(self.server, session, op) for op in ops
                    ]
                )
                txn.batches[seq] = list(ops)
                txn.results[seq] = results
            if verdict == "commit":
                # The decision was durable but the data commit was not:
                # finish it now (the decide record needs no re-logging).
                session.annotate_next_commit(TwoPhaseMarker(gtid))
                session.commit()
                session.close()
                with self._mu:
                    self._remember_locked(gtid, "commit")
                self.recommitted += 1
                continue
            with self._mu:
                self._prepared[gtid] = txn
            in_doubt += 1
        self.reinstated = in_doubt
        if in_doubt:
            self.ensure_resolver()
        return in_doubt

    # ------------------------------------------------------------------
    # In-doubt resolution

    def ensure_resolver(self) -> None:
        """Start the background resolver thread (idempotent)."""
        if self._resolver is not None and self._resolver.is_alive():
            return
        self._stop.clear()
        self._resolver = threading.Thread(
            target=self._resolve_loop, name="repro-2pc-resolver", daemon=True
        )
        self._resolver.start()

    def _resolve_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self.resolve_pass()

    def resolve_pass(self) -> None:
        """One resolution sweep over the in-doubt transactions."""
        now = time.monotonic()
        with self._mu:
            candidates = [
                txn
                for txn in self._prepared.values()
                if now - txn.prepared_at >= self.resolve_after
            ]
        for txn in candidates:
            try:
                fire("shard.resolve")
                verdict = self._ask_coordinator(txn)
                if verdict in ("commit", "abort"):
                    self.decide(txn.gtid, verdict)
                elif verdict is None and (
                    time.monotonic() - txn.prepared_at
                    >= self.presume_abort_after
                ):
                    # The coordinator has been unreachable for so long it
                    # is presumed dead for good; release the locks.
                    self.presumed_aborts += 1
                    self.decide(txn.gtid, "abort")
            except ReproError:
                # An injected resolve fault or a decide race: this sweep
                # skips the transaction, the next one retries.
                self.resolve_errors += 1

    def _ask_coordinator(self, txn: PreparedTxn) -> str | None:
        """``commit``/``abort``/``pending`` from the coordinator's
        decision log, or ``None`` when it is unreachable."""
        if txn.resolve_addr is None:
            return None
        from ..server.client import ReproClient, ServerError

        host, port = txn.resolve_addr
        try:
            with ReproClient(
                host, int(port), connect_timeout=1.0, auto_reconnect=False
            ) as coordinator:
                response = coordinator.request("resolve", gtid=txn.gtid)
        except (ServerError, wire.WireError, OSError):
            return None
        verdict = response.get("verdict")
        return verdict if isinstance(verdict, str) else None

    # ------------------------------------------------------------------

    def in_doubt(self) -> list[str]:
        with self._mu:
            return sorted(self._prepared)

    def holds(self, gtid: str) -> bool:
        with self._mu:
            return gtid in self._prepared

    def stats_snapshot(self) -> dict[str, int]:
        with self._mu:
            in_doubt = len(self._prepared)
        return {
            "in_doubt": in_doubt,
            "prepares": self.prepares,
            "commits": self.commits,
            "aborts": self.aborts,
            "presumed_aborts": self.presumed_aborts,
            "recommitted": self.recommitted,
            "reinstated": self.reinstated,
            "forgotten_decides": self.forgotten_decides,
        }

    def stop(self) -> None:
        """Stop the resolver thread (in-doubt sessions are left to the
        server's shutdown draining; their prepare records are durable)."""
        self._stop.set()
        if self._resolver is not None:
            self._resolver.join(timeout=5.0)
            self._resolver = None
