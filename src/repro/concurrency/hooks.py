"""Lock-acquisition hooks called from the DML and enforcement paths.

The engine's hot paths stay lock-free in single-session use: every hook
first resolves the *active locker* — the (lock manager, transaction)
pair of the session bound to the current thread — and returns
immediately when there is none.  Only statements issued through a
:class:`~repro.concurrency.session.Session` pay for locking.

What gets locked where (the concurrency protocol, see DESIGN.md §5d):

* **insert into T** — IX on T, then X on each of T's candidate-key
  values carried by the new row (serializes duplicate-key races so a
  key check cannot pass against a row another transaction may yet roll
  back ... or insert);
* **delete from T** — IX on T, X on the victim row's candidate-key
  values (an insert of the same key must wait for our fate), and X on
  each *referenced-key* value for every foreign key in which T is the
  parent — the other half of the phantom-parent handshake;
* **update of T** — the union of the delete locks on the old row and
  the insert locks on the new row (referenced-key X only when key
  columns actually change, mirroring the paper's delete+insert model);
* **child FK check** — S on the referenced-key value of the *witness*
  parent the probe found (:func:`verify_parent_exists`).  Strict 2PL
  holds that S until commit, so the imputed/validated reference cannot
  point at a parent that a concurrent delete removes mid-enforcement.

The witness lock is acquired *after* the probe (we cannot know which
parent subsumes the value before looking), so the witness may be gone by
the time the lock is granted — the statement latch is dropped during
lock waits.  Without MVCC, :func:`verify_parent_exists` re-probes under
the lock and retries with a fresh witness until the check stabilises.
With the MVCC version store attached, the probe-again loop is replaced
by *commit-time witness re-validation*: the adopted witness is recorded
on the transaction and :func:`revalidate_witnesses` re-checks every one
against the latest committed state at commit, aborting with a retryable
:class:`~repro.errors.SerializationError` if a parent vanished in the
probe→grant window.

Snapshot reads take **no** logical locks at all — they never reach this
module.  The lock protocol above is the write path only.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from ..errors import SerializationError
from ..nulls import NULL
from .locks import LockManager, LockMode, key_resource, table_resource

if TYPE_CHECKING:  # pragma: no cover
    from ..constraints.foreign_key import ForeignKey
    from ..storage.database import Database

#: How many fresh witnesses to chase before declaring the reference
#: unsatisfied.  Each retry means a parent was deleted between our probe
#: and our lock grant; a handful of repetitions only occurs under
#: adversarial churn on exactly the probed key.
_WITNESS_RETRIES = 8


def _locker(db: "Database") -> tuple[LockManager, int] | None:
    """The (lock manager, txn id) to lock under, or None when the
    statement is not running on a managed session's open transaction."""
    manager = db._session_manager
    if manager is None:
        return None
    session = db.current_session
    if session is None:
        return None
    txn = session._transaction
    if txn is None or not txn.is_open:
        return None
    return manager.locks, txn.txn_id


def _candidate_key_resources(
    db: "Database", table_name: str, row: Sequence[Any]
) -> list:
    resources = []
    for key in db.candidate_keys.get(table_name, ()):
        values = key.key_values(row)
        if any(v is NULL for v in values):
            continue  # NULL-bearing keys never collide (SQL uniqueness)
        resources.append(key_resource(table_name, key.columns, values))
    return resources


def _referenced_key_resources(
    db: "Database", table_name: str, row: Sequence[Any]
) -> list:
    resources = []
    for fk in db.foreign_keys_on_parent(table_name):
        values = fk.parent_values(row)
        resources.append(key_resource(fk.parent_table, fk.key_columns, values))
    return resources


def lock_for_insert(db: "Database", table_name: str, row: Sequence[Any]) -> None:
    locked = _locker(db)
    if locked is None:
        return
    locks, txn_id = locked
    locks.acquire(txn_id, table_resource(table_name), LockMode.IX)
    for resource in _candidate_key_resources(db, table_name, row):
        locks.acquire(txn_id, resource, LockMode.X)


def lock_for_delete(db: "Database", table_name: str, row: Sequence[Any]) -> None:
    locked = _locker(db)
    if locked is None:
        return
    locks, txn_id = locked
    locks.acquire(txn_id, table_resource(table_name), LockMode.IX)
    for resource in _candidate_key_resources(db, table_name, row):
        locks.acquire(txn_id, resource, LockMode.X)
    for resource in _referenced_key_resources(db, table_name, row):
        locks.acquire(txn_id, resource, LockMode.X)


def lock_for_update(
    db: "Database",
    table_name: str,
    old_row: Sequence[Any],
    new_row: Sequence[Any],
) -> None:
    locked = _locker(db)
    if locked is None:
        return
    locks, txn_id = locked
    locks.acquire(txn_id, table_resource(table_name), LockMode.IX)
    for row in (old_row, new_row):
        for resource in _candidate_key_resources(db, table_name, row):
            locks.acquire(txn_id, resource, LockMode.X)
    for fk in db.foreign_keys_on_parent(table_name):
        old_key = fk.parent_values(old_row)
        if old_key != fk.parent_values(new_row):
            locks.acquire(
                txn_id,
                key_resource(fk.parent_table, fk.key_columns, old_key),
                LockMode.X,
            )


def lock_for_read(db: "Database", table_name: str) -> None:
    """Intention-shared table lock for scans issued through a session."""
    locked = _locker(db)
    if locked is None:
        return
    locks, txn_id = locked
    locks.acquire(txn_id, table_resource(table_name), LockMode.IS)


def verify_parent_exists(
    db: "Database",
    fk: "ForeignKey",
    columns: Sequence[str],
    values: Sequence[Any],
) -> bool:
    """The concurrency-safe subsumption probe of the child-side check.

    Single-session: one existence probe, exactly the old behaviour.
    Multi-session: find a witness parent, take a shared lock on its full
    referenced-key value, then re-verify the witness under the lock —
    looping with fresh witnesses while concurrent deletes race us.  On
    success the S lock pins the adopted parent until our transaction
    commits; a parent-delete of that key blocks on its X lock until then.
    """
    from ..query import probes

    parent = db.table(fk.parent_table)
    locked = _locker(db)
    if locked is None:
        return probes.exists_eq(parent, columns, values)
    locks, txn_id = locked
    if locks.solo_mode:
        # One session: the witness cannot vanish between the probe and
        # the (instant) solo-mode lock grant, so the re-verify loop is
        # pure overhead.  Lock the witness key anyway — strict 2PL still
        # pins it for the transaction, and the grant is materialised if
        # a second session appears before commit.
        witness = probes.find_eq(parent, columns, values)
        if witness is None:
            return False
        resource = key_resource(
            fk.parent_table, fk.key_columns, fk.parent_values(witness)
        )
        locks.acquire(txn_id, resource, LockMode.S)
        if locks.sanitizer is not None:
            locks.sanitizer.on_witness_pinned(txn_id, resource)
        return True
    if db.versions is not None:
        # MVCC: probe once, pin the witness S-lock, and record the
        # adopted key on the transaction.  The probe→grant window (a
        # committed delete sneaking in before our S is granted) is closed
        # at commit time by revalidate_witnesses, not by re-probing here.
        witness = probes.find_eq(parent, columns, values)
        if witness is None:
            return False
        full_key = tuple(fk.parent_values(witness))
        resource = key_resource(fk.parent_table, fk.key_columns, full_key)
        locks.acquire(txn_id, resource, LockMode.S)
        if locks.sanitizer is not None:
            locks.sanitizer.on_witness_pinned(txn_id, resource)
        txn = db.active_transaction
        if txn is not None:
            txn.record_witness(
                (fk.parent_table, tuple(fk.key_columns), full_key)
            )
        return True
    key_columns = list(fk.key_columns)
    for __ in range(_WITNESS_RETRIES):
        witness = probes.find_eq(parent, columns, values)
        if witness is None:
            return False
        full_key = fk.parent_values(witness)
        resource = key_resource(fk.parent_table, fk.key_columns, full_key)
        locks.acquire(txn_id, resource, LockMode.S)
        # The latch may have been dropped while waiting: re-verify that
        # some parent with the locked key still exists.
        if probes.exists_eq(parent, key_columns, list(full_key)):
            if locks.sanitizer is not None:
                # The probe window closes here: the sanitizer checks the
                # witness S-lock is pinned for the rest of the txn.
                locks.sanitizer.on_witness_pinned(txn_id, resource)
            return True
    return False


def verify_parent_exists_many(
    db: "Database",
    fk: "ForeignKey",
    columns: Sequence[str],
    values_list: Sequence[Sequence[Any]],
) -> list[bool]:
    """Vectorized :func:`verify_parent_exists` for one probe shape.

    Single-session statements go straight to
    :func:`repro.query.probes.exists_eq_many` (sorted, deduplicated
    descents).  Managed sessions verify each **distinct** value tuple
    once — in encoded-key order, so a batch pins its witness S-locks in
    a deterministic global order — and replay the probe's tracker delta
    for the duplicates: the parent table is not mutated by the child
    batch itself, so every duplicate would have charged exactly what its
    first probe charged, and the witness S-lock / recorded-witness side
    effects are idempotent (re-grants and set inserts).
    """
    from ..query import probes

    parent = db.table(fk.parent_table)
    if _locker(db) is None:
        return probes.exists_eq_many(parent, list(columns), values_list)
    tracker = parent.tracker
    groups: dict[tuple[Any, ...], list[int]] = {}
    for position, values in enumerate(values_list):
        groups.setdefault(tuple(values), []).append(position)
    results = [False] * len(values_list)
    witness_probe = probes.prepared(parent, tuple(columns))
    for key in probes.probe_order(witness_probe, list(groups), tuple(values_list[0])):
        positions = groups[key]
        before = tracker.snapshot() if len(positions) > 1 else None
        hit = verify_parent_exists(db, fk, columns, list(key))
        if before is not None:
            delta = tracker.snapshot().diff(before)
            extra = len(positions) - 1
            for name, amount in delta.counters.items():
                if amount:
                    tracker.count(name, amount * extra)
        for position in positions:
            results[position] = hit
    return results


def revalidate_witnesses(db: "Database", txn: Any) -> None:
    """Commit-time witness re-check (MVCC only).

    Every FK witness the transaction adopted must still exist in the
    latest *committed* state.  The probe runs through the transaction's
    committed view, so other transactions' uncommitted deletes are
    ignored (they would have blocked on our S-lock anyway) while a
    committed delete that won the probe→grant race is detected.  Raises
    :class:`~repro.errors.SerializationError`; the caller rolls back.
    """
    versions = db.versions
    if versions is None:
        return
    witnesses = getattr(txn, "_witnesses", None)
    if not witnesses:
        return
    from ..query import probes

    view = versions.committed_view(txn.txn_id)
    for parent_table, key_columns, key_values in witnesses:
        parent = db.tables.get(parent_table)
        if parent is None or not probes.exists_eq(
            parent, list(key_columns), list(key_values), view=view
        ):
            raise SerializationError(
                f"{txn.name}: foreign-key witness {key_values!r} in table "
                f"{parent_table!r} vanished before commit (serialization "
                f"failure; retry the transaction)"
            )
