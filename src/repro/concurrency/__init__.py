"""Concurrent sessions: strict 2PL locking and multi-session access.

Layers (bottom up):

* :mod:`repro.concurrency.locks` — lock modes, the statement latch, and
  the :class:`LockManager` (waits-for deadlock detection, timeouts);
* :mod:`repro.concurrency.hooks` — the acquisition points threaded
  through :mod:`repro.query.dml` and :mod:`repro.query.enforcement`;
* :mod:`repro.concurrency.session` — :class:`SessionManager` /
  :class:`Session`, the multi-client replacement for the engine's old
  single ``active_transaction`` slot.

The wire front-end over this lives in :mod:`repro.server`.
"""

from .locks import (
    DEFAULT_LOCK_TIMEOUT,
    LockManager,
    LockMode,
    LockStats,
    StatementLatch,
    compatible,
    key_resource,
    table_resource,
)
from .session import Session, SessionManager

__all__ = [
    "DEFAULT_LOCK_TIMEOUT",
    "LockManager",
    "LockMode",
    "LockStats",
    "Session",
    "SessionManager",
    "StatementLatch",
    "compatible",
    "key_resource",
    "table_resource",
]
