"""Multi-session access to one database.

The engine historically had exactly one ``active_transaction`` slot —
one client, one statement stream.  A :class:`SessionManager` replaces
that with any number of isolated :class:`Session` objects:

* each session has its own transaction slot (``BEGIN`` on one session
  never collides with another's),
* every statement a session runs is wrapped in the database's
  :class:`~repro.concurrency.locks.StatementLatch` (physical structures
  never interleave between threads) and acquires logical locks through
  the shared :class:`~repro.concurrency.locks.LockManager` (strict 2PL,
  so the partial-RI enforcement stays correct under concurrency),
* statements outside an explicit transaction run as their own implicit
  transaction (auto-commit), so their locks are held to the statement
  boundary and their WAL records are durable per statement.

A session is *bound* to the current thread for the duration of each
statement (:meth:`Session.use`), which is how the deep engine layers —
``dml``, ``enforcement``, the trigger bodies — find the right
transaction without threading a session argument through every call.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping, Sequence
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, TypeVar

from ..errors import SessionError, TransactionError
from .locks import DEFAULT_LOCK_TIMEOUT, LockManager, StatementLatch

if TYPE_CHECKING:  # pragma: no cover
    from ..query.predicate import Predicate
    from ..query.transaction import Transaction
    from ..storage.database import Database
    from ..storage.versions import Snapshot

T = TypeVar("T")


class Session:
    """One client's view of the database: a transaction slot plus the
    statement wrappers that route work through latching and locking."""

    def __init__(self, manager: "SessionManager", session_id: int) -> None:
        self.manager = manager
        self.db: "Database" = manager.db
        self.session_id = session_id
        self._transaction: "Transaction | None" = None
        self._closed = False
        #: Open MVCC snapshot (see :meth:`begin_snapshot`); while set,
        #: this session's selects are lock-free reads at its read LSN.
        self._snapshot: "Snapshot | None" = None
        #: One-shot annotation consumed by the next commit on this
        #: session (see :meth:`annotate_next_commit`).
        self._commit_note: Any = None

    # ------------------------------------------------------------------
    # Thread binding

    @contextmanager
    def use(self) -> Iterator["Session"]:
        """Bind this session to the current thread for a block.

        Everything the engine resolves through
        ``Database.active_transaction`` inside the block sees this
        session's transaction.  Bindings nest (the previous binding is
        restored on exit), so a server thread can temporarily act on
        behalf of another session during shutdown draining.
        """
        self._check_open()
        local = self.db._session_local
        previous = getattr(local, "session", None)
        local.session = self
        try:
            yield self
        finally:
            local.session = previous

    # ------------------------------------------------------------------
    # Transaction control

    @property
    def in_transaction(self) -> bool:
        return self._transaction is not None and self._transaction.is_open

    @property
    def transaction(self) -> "Transaction | None":
        return self._transaction

    def begin(self) -> "Transaction":
        """Open an explicit transaction on this session."""
        self._check_open()
        with self.use():
            with self.db_latch():
                return self.db.begin()

    def commit(self) -> None:
        with self.use():
            with self.db_latch():
                self._require_transaction("commit").commit()

    def rollback(self) -> None:
        with self.use():
            with self.db_latch():
                self._require_transaction("roll back").rollback()

    def _require_transaction(self, verb: str) -> "Transaction":
        txn = self._transaction
        if txn is None or not txn.is_open:
            raise TransactionError(
                f"session {self.session_id}: no transaction to {verb}"
            )
        return txn

    # ------------------------------------------------------------------
    # Statements

    def execute(self, fn: Callable[[], T]) -> T:
        """Run *fn* as one statement of this session.

        Inside an explicit transaction the callable simply runs under the
        latch; otherwise it runs as its own implicit transaction that
        commits on success and rolls back on any error (releasing the
        locks it acquired either way).
        """
        self._check_open()
        with self.use():
            with self.db_latch():
                if self.in_transaction:
                    return fn()
                with self.db.begin():
                    return fn()

    def insert(self, table: str, values: Sequence[Any] | Mapping[str, Any]) -> int:
        return self.execute(lambda: self.db.insert(table, values))

    def delete_where(self, table: str, predicate: "Predicate | None" = None) -> int:
        return self.execute(lambda: self.db.delete_where(table, predicate))

    def update_where(
        self,
        table: str,
        assignments: Mapping[str, Any],
        predicate: "Predicate | None" = None,
    ) -> int:
        return self.execute(lambda: self.db.update_where(table, assignments, predicate))

    def select(
        self,
        table: str,
        predicate: "Predicate | None" = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
    ) -> list[tuple[Any, ...]]:
        snap = self._snapshot
        if snap is not None and not snap.closed:
            self._check_open()
            return self._snapshot_read(snap, table, predicate, columns, limit)
        return self.execute(lambda: self.db.select(table, predicate, columns, limit))

    # ------------------------------------------------------------------
    # Snapshot-isolation reads (MVCC)

    def begin_snapshot(self) -> "Snapshot":
        """Open a stable read point at the current committed LSN.

        Until :meth:`end_snapshot`, every :meth:`select` on this session
        is a *snapshot read*: it observes exactly the rows committed at
        or before the read LSN, holds the statement latch only in shared
        mode, and acquires **zero** logical locks — concurrent writers
        are never waited on.  Requires :meth:`Database.enable_mvcc`.
        """
        self._check_open()
        versions = self.db.versions
        if versions is None:
            raise SessionError(
                f"session {self.session_id}: snapshot reads need MVCC "
                "(call db.enable_mvcc() first)"
            )
        if self._snapshot is not None and not self._snapshot.closed:
            raise SessionError(
                f"session {self.session_id}: a snapshot is already open"
            )
        # Registration mutates the version store's snapshot table, so it
        # runs exclusive; the reads themselves only take shared.
        with self.db_latch():
            self._snapshot = versions.open_snapshot()
        return self._snapshot

    def end_snapshot(self) -> None:
        """Close the open snapshot (no-op when none is open)."""
        snap = self._snapshot
        self._snapshot = None
        if snap is not None and not snap.closed:
            with self.db_latch():
                snap.close()

    @contextmanager
    def snapshot(self) -> Iterator["Snapshot"]:
        """``with session.snapshot():`` — scoped snapshot reads."""
        snap = self.begin_snapshot()
        try:
            yield snap
        finally:
            self.end_snapshot()

    def snapshot_select(
        self,
        table: str,
        predicate: "Predicate | None" = None,
        columns: Sequence[str] | None = None,
        limit: int | None = None,
    ) -> list[tuple[Any, ...]]:
        """One snapshot read: uses the open snapshot, or opens and closes
        a fresh one around this single statement (the server's
        ``snapshot: true`` select path)."""
        self._check_open()
        snap = self._snapshot
        if snap is not None and not snap.closed:
            return self._snapshot_read(snap, table, predicate, columns, limit)
        snap = self.begin_snapshot()
        try:
            return self._snapshot_read(snap, table, predicate, columns, limit)
        finally:
            self.end_snapshot()

    def _snapshot_read(
        self,
        snap: "Snapshot",
        table: str,
        predicate: "Predicate | None",
        columns: Sequence[str] | None,
        limit: int | None,
    ) -> list[tuple[Any, ...]]:
        """The zero-lock read path: shared latch, no transaction, no
        lock-manager traffic (the lockdep scope asserts the latter)."""
        from ..analysis import lockdep
        from ..query import executor

        latch = self.db_latch()
        latch.acquire_shared()
        try:
            with lockdep.snapshot_read_scope():
                return executor.select(
                    self.db, table, predicate, columns, limit, view=snap.view()
                )
        finally:
            latch.release_shared()

    # ------------------------------------------------------------------
    # Commit annotation (exactly-once ledger support)

    def annotate_next_commit(self, note: Any) -> None:
        """Attach *note* to the next commit this session performs.

        The note rides inside the WAL commit record
        (:meth:`repro.storage.wal.WriteAheadLog.commit`), making it
        durable exactly iff the commit is — the server's exactly-once
        result ledger is built on this.  The annotation is one-shot:
        commit consumes it, rollback discards it.
        """
        self._commit_note = note

    def _take_commit_note(self) -> Any:
        note = self._commit_note
        self._commit_note = None
        return note

    # ------------------------------------------------------------------

    def db_latch(self) -> StatementLatch:
        return self.manager.latch

    def close(self) -> None:
        """Roll back any open transaction and retire the session."""
        if self._closed:
            return
        self.end_snapshot()
        if self.in_transaction:
            self.rollback()
        self._closed = True
        self.manager._forget(self)

    @property
    def is_open(self) -> bool:
        return not self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError(f"session {self.session_id} is closed")

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "in transaction" if self.in_transaction else "idle"
        )
        return f"<Session {self.session_id} ({state})>"


class SessionManager:
    """Hands out sessions and owns the shared lock manager and latch."""

    def __init__(
        self,
        db: "Database",
        lock_timeout: float = DEFAULT_LOCK_TIMEOUT,
    ) -> None:
        self.db = db
        self.latch = StatementLatch()
        self.locks = LockManager(latch=self.latch, timeout=lock_timeout)
        self._mu = threading.Lock()
        self._sessions: dict[int, Session] = {}
        self._counter = 0
        self._refresh_solo()

    def session(self) -> Session:
        """Create a new isolated session."""
        with self._mu:
            self._counter += 1
            session = Session(self, self._counter)
            self._sessions[session.session_id] = session
        self._refresh_solo()
        return session

    def _forget(self, session: Session) -> None:
        with self._mu:
            self._sessions.pop(session.session_id, None)
        self._refresh_solo()

    def _refresh_solo(self) -> None:
        """Keep the lock manager's solo fast path in sync with the
        session count.

        The statement latch is taken first: no statement is mid-flight
        while the mode flips, so ``set_solo(False)`` sees a stable
        ``_held`` map to materialise.  The count is re-read inside the
        latch so concurrent create/close calls converge on the final
        census regardless of arrival order.
        """
        with self.latch:
            with self._mu:
                solo = len(self._sessions) <= 1
            self.locks.set_solo(solo)

    @property
    def open_sessions(self) -> list[Session]:
        with self._mu:
            return list(self._sessions.values())

    def close_all(self) -> int:
        """Roll back and close every open session; returns how many had
        an open transaction (the server reports this during shutdown)."""
        rolled_back = 0
        for session in self.open_sessions:
            if session.in_transaction:
                rolled_back += 1
            session.close()
        return rolled_back

    def stats(self) -> dict[str, float]:
        """Lock-manager counters plus session counts, for the server."""
        snapshot = self.locks.stats.snapshot()
        snapshot["open_sessions"] = len(self.open_sessions)
        versions = self.db.versions
        if versions is not None:
            snapshot["active_snapshots"] = versions.active_snapshots
            snapshot["row_versions"] = versions.version_count()
        return snapshot
