"""Strict two-phase locking for multi-session enforcement.

The partial-RI phantom-parent race motivates this module: an
intelligent-update imputation (or a plain MATCH PARTIAL child check)
probes the parent table, finds a subsuming parent, and adopts it — while
a concurrent session deletes exactly that parent.  Serializing the two
through locks is what makes the paper's trigger + index enforcement
correct under concurrent traffic, not just fast.

Granularity follows the classic Gray hierarchy, two levels deep:

* **table locks** — ``("table", name)`` with intention modes (IS/IX) for
  row-level work and S/X for whole-table operations (DDL);
* **key locks** — ``("key", table, columns, values)`` in S/X, covering
  one key value of one (candidate or referenced) key.  Writers take X on
  the key values they create or destroy; the enforcement probes take S
  on the *witness* parent row they rely on.

Policy decisions, each pinned by a test:

* **strict 2PL** — locks are held until the owning transaction ends
  (:meth:`LockManager.release_all` is called from ``Transaction._close``),
  so a reader's witness parent cannot vanish before the reader commits;
* **deadlock detection** over the waits-for graph, run whenever a
  request must wait; the *youngest* transaction in the cycle (largest
  transaction id) is aborted with :class:`~repro.errors.DeadlockError`;
* **timeouts** with capped-backoff polling as the backstop for waits the
  detector cannot see (default :data:`DEFAULT_LOCK_TIMEOUT`), raising
  :class:`~repro.errors.LockTimeoutError`;
* **no queue fairness** — a request is granted the moment it is
  compatible with the *holders*; starvation is bounded by the timeout.

Lock waits cross the fault points ``lock.acquire`` (every request) and
``lock.wait`` (each blocking wait), so :mod:`repro.testing.faults`
injectors can simulate contention storms without real threads.
"""

from __future__ import annotations

import enum
import threading
import time
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ConcurrencyError, DeadlockError, LockTimeoutError
from ..testing.faults import fire

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.lockdep import LockdepObserver

#: Seconds a lock request waits before giving up.  Generous enough that
#: real contention resolves, short enough that an undetectable hang
#: (e.g. a lock leaked by buggy user code) surfaces as an error.
DEFAULT_LOCK_TIMEOUT = 10.0

#: A lockable thing: ``("table", name)`` or ``("key", table, cols, vals)``.
Resource = Hashable


class LockMode(enum.Enum):
    """The classic multi-granularity modes (Gray et al.)."""

    IS = "IS"
    IX = "IX"
    S = "S"
    X = "X"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LockMode.{self.name}"


_COMPATIBLE: dict[tuple[LockMode, LockMode], bool] = {
    (LockMode.IS, LockMode.IS): True,
    (LockMode.IS, LockMode.IX): True,
    (LockMode.IS, LockMode.S): True,
    (LockMode.IS, LockMode.X): False,
    (LockMode.IX, LockMode.IS): True,
    (LockMode.IX, LockMode.IX): True,
    (LockMode.IX, LockMode.S): False,
    (LockMode.IX, LockMode.X): False,
    (LockMode.S, LockMode.IS): True,
    (LockMode.S, LockMode.IX): False,
    (LockMode.S, LockMode.S): True,
    (LockMode.S, LockMode.X): False,
    (LockMode.X, LockMode.IS): False,
    (LockMode.X, LockMode.IX): False,
    (LockMode.X, LockMode.S): False,
    (LockMode.X, LockMode.X): False,
}

#: ``covers[a]`` = the modes a holder of ``a`` implicitly also holds.
_COVERS: dict[LockMode, frozenset[LockMode]] = {
    LockMode.IS: frozenset({LockMode.IS}),
    LockMode.IX: frozenset({LockMode.IX, LockMode.IS}),
    LockMode.S: frozenset({LockMode.S, LockMode.IS}),
    LockMode.X: frozenset(LockMode),
}

#: Least upper bound for upgrades: holding `row` and requesting `col`
#: leaves the transaction holding this mode.
_COMBINE: dict[tuple[LockMode, LockMode], LockMode] = {}
for _a in LockMode:
    for _b in LockMode:
        if _b in _COVERS[_a]:
            _COMBINE[(_a, _b)] = _a
        elif _a in _COVERS[_b]:
            _COMBINE[(_a, _b)] = _b
        else:  # S+IX (and symmetric) escalate to X; nothing else is disjoint
            _COMBINE[(_a, _b)] = LockMode.X


def compatible(held: LockMode, requested: LockMode) -> bool:
    """May *requested* be granted alongside an existing *held* lock?"""
    return _COMPATIBLE[(held, requested)]


class StatementLatch:
    """A re-entrant reader/writer latch protecting physical structures.

    Writers (every statement that may mutate: DML, DDL, commit paths)
    hold the latch *exclusively* for the duration of one statement, so
    B+ tree splits, heap mutations and WAL appends never interleave
    between threads — exactly the pre-MVCC behaviour, and ``acquire`` /
    ``release`` / ``with latch:`` keep meaning exclusive mode.  Snapshot
    readers hold it *shared* (:meth:`acquire_shared`, :meth:`shared`):
    any number of readers run together, and the latch is the only thing
    a snapshot read synchronises on — it takes zero logical locks.

    The latch is writer-preferring: once a writer is waiting, new
    readers queue behind it, so a 99:1 read mix cannot starve writers.
    Re-entrancy is per-thread in both modes; a shared request by the
    thread that already holds exclusive is satisfied by the exclusive
    hold.  Upgrading (exclusive while holding only shared) deadlocks by
    construction and is rejected with :class:`ConcurrencyError`.

    When a statement must *wait* for a logical lock, the exclusive hold
    is fully released for the duration of the wait
    (:meth:`release_for_wait`) — otherwise the holder of the conflicting
    lock could never run to commit, a latch-versus-lock deadlock.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._cond = threading.Condition(self._mu)
        self._writer: int | None = None  # thread ident holding exclusive
        self._writer_depth = 0
        self._readers = 0  # threads holding shared (first entry only)
        self._writers_waiting = 0
        self._local = threading.local()  # per-thread shared-mode depth

    def _shared_depth(self) -> int:
        return getattr(self._local, "shared_depth", 0)

    # ------------------------------------------------------------------
    # Exclusive mode (the statement/write path)

    def acquire(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if self._shared_depth() > 0:
                raise ConcurrencyError(
                    "latch upgrade: exclusive requested while holding shared"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise ConcurrencyError(
                    "latch released by a thread that does not hold it"
                )
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def held(self) -> bool:
        """Does the *current thread* hold the latch exclusively?"""
        return self._writer == threading.get_ident()

    # ------------------------------------------------------------------
    # Shared mode (the snapshot-read path)

    def acquire_shared(self) -> None:
        depth = self._shared_depth()
        if depth:
            self._local.shared_depth = depth + 1  # re-entrant, no wait
            return
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Shared inside our own exclusive hold: already excluded.
                self._local.shared_depth = 1
                self._local.shared_counted = False
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._local.shared_depth = 1
        self._local.shared_counted = True

    def release_shared(self) -> None:
        depth = self._shared_depth()
        if depth <= 0:
            raise ConcurrencyError(
                "shared latch released by a thread that does not hold it"
            )
        self._local.shared_depth = depth - 1
        if depth == 1 and getattr(self._local, "shared_counted", False):
            self._local.shared_counted = False
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    def shared(self) -> "_SharedLatch":
        """Context manager for one shared (snapshot-read) hold."""
        return _SharedLatch(self)

    # ------------------------------------------------------------------

    def release_for_wait(self) -> Callable[[], None]:
        """Fully release the current thread's exclusive hold; returns the
        restorer.

        The restorer re-acquires to the previous depth and must be called
        exactly once (``finally``) after the wait finishes.
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise ConcurrencyError(
                    "release_for_wait by a thread not holding the latch"
                )
            depth = self._writer_depth
            self._writer = None
            self._writer_depth = 0
            self._cond.notify_all()

        def restore() -> None:
            self.acquire()
            with self._cond:
                self._writer_depth = depth

        return restore

    def __enter__(self) -> "StatementLatch":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class _SharedLatch:
    """``with latch.shared():`` — one shared hold, released on exit."""

    __slots__ = ("_latch",)

    def __init__(self, latch: StatementLatch) -> None:
        self._latch = latch

    def __enter__(self) -> StatementLatch:
        self._latch.acquire_shared()
        return self._latch

    def __exit__(self, *exc_info) -> None:
        self._latch.release_shared()


@dataclass
class LockStats:
    """Counters the benchmark and the server's ``stats`` op report."""

    acquired: int = 0
    waits: int = 0
    wait_time_s: float = 0.0
    deadlocks: int = 0
    timeouts: int = 0

    def snapshot(self) -> dict[str, float]:
        return {
            "acquired": self.acquired,
            "waits": self.waits,
            "wait_time_s": self.wait_time_s,
            "deadlocks": self.deadlocks,
            "timeouts": self.timeouts,
        }


@dataclass
class _Waiter:
    txn_id: int
    mode: LockMode
    victim: bool = False


@dataclass
class _LockRecord:
    granted: dict[int, LockMode] = field(default_factory=dict)
    waiters: list[_Waiter] = field(default_factory=list)


class LockManager:
    """Table- and key-granularity strict 2PL with deadlock detection."""

    def __init__(
        self,
        latch: StatementLatch | None = None,
        timeout: float = DEFAULT_LOCK_TIMEOUT,
        poll_interval: float = 0.02,
        sanitize: bool | None = None,
    ) -> None:
        self._latch = latch
        self.timeout = timeout
        self.poll_interval = poll_interval
        self._mu = threading.Lock()
        self._cond = threading.Condition(self._mu)
        self._table: dict[Resource, _LockRecord] = {}
        #: Per-transaction view of every held resource and the combined
        #: mode held on it — mirrored from ``_table`` on the full path,
        #: authoritative on the solo fast path (where no ``_LockRecord``
        #: exists until :meth:`set_solo` materialises the grants).
        self._held: dict[int, dict[Resource, LockMode]] = {}
        self.stats = LockStats()
        #: The lockdep observer, or None (the default).  Every hot-path
        #: crossing tests exactly ``self._sanitizer is not None`` — the
        #: same compile-to-one-boolean discipline as the fault points.
        #: Armed explicitly (``sanitize=True``) or by ``REPRO_SANITIZE=1``.
        self._sanitizer: "LockdepObserver | None" = None
        if sanitize is None:
            from ..analysis import lockdep

            sanitize = lockdep.env_enabled()
        if sanitize:
            from ..analysis import lockdep

            self._sanitizer = lockdep.attach(self)
        #: Solo mode: with at most one session registered, no conflict is
        #: possible, so ``acquire`` records the resource and its combined
        #: mode in ``_held`` (for strict-2PL release, introspection, and
        #: exact materialisation on ``set_solo(False)``) without building
        #: ``_LockRecord`` state or taking the mutex.  The session manager
        #: flips this through :meth:`set_solo` under the statement latch,
        #: so no statement is mid-flight during a transition.  A
        #: standalone manager (no session manager) stays in full mode.
        self._solo = False
        #: Bumped on every solo transition; tests use it to observe flips.
        self.solo_epoch = 0

    # ------------------------------------------------------------------
    # Acquisition

    def acquire(
        self,
        txn_id: int,
        resource: Resource,
        mode: LockMode,
        timeout: float | None = None,
    ) -> None:
        """Grant *mode* on *resource* to *txn_id*, waiting if necessary.

        Raises :class:`~repro.errors.DeadlockError` if this transaction
        is chosen as a deadlock victim while waiting, and
        :class:`~repro.errors.LockTimeoutError` on timeout.  Locks stay
        held until :meth:`release_all`.
        """
        fire("lock.acquire")
        if self._solo:
            # One session: every request is trivially grantable.  Record
            # the resource *and the combined mode* so release_all/held_by
            # behave identically and set_solo(False) can materialise the
            # grant exactly if a second session appears mid-transaction.
            # (Materialising as X instead would block compatible lockers
            # — e.g. two IX inserters — for the survivor's whole life.)
            modes = self._held.setdefault(txn_id, {})
            prior = modes.get(resource)
            modes[resource] = mode if prior is None else _COMBINE[(prior, mode)]
            self.stats.acquired += 1
            if self._sanitizer is not None:
                self._sanitizer.on_acquired(txn_id, resource, mode)
            return
        with self._cond:
            if self._try_grant(txn_id, resource, mode):
                self.stats.acquired += 1
                if self._sanitizer is not None:
                    self._sanitizer.on_acquired(txn_id, resource, mode)
                return
        # Must wait.  Drop the statement latch first: the conflicting
        # holder needs it to finish its statement and commit.
        restore = (
            self._latch.release_for_wait()
            if self._latch is not None and self._latch.held()
            else None
        )
        try:
            self._wait_for(txn_id, resource, mode, timeout)
        finally:
            if restore is not None:
                restore()

    def _wait_for(
        self, txn_id: int, resource: Resource, mode: LockMode, timeout: float | None
    ) -> None:
        deadline = time.monotonic() + (self.timeout if timeout is None else timeout)
        waiter = _Waiter(txn_id, mode)
        started = time.monotonic()
        # Backoff: poll slices double up to the manager's interval cap,
        # so short waits resolve quickly and long waits stay cheap.
        slice_s = min(0.002, self.poll_interval)
        with self._cond:
            record = self._table.setdefault(resource, _LockRecord())
            record.waiters.append(waiter)
            self.stats.waits += 1
            try:
                while True:
                    if self._try_grant(txn_id, resource, mode):
                        self.stats.acquired += 1
                        # Grant-time recording: a deadlock victim never
                        # reaches this line, so fired cycles self-suppress
                        # in the lock-order graph (see analysis.lockdep).
                        if self._sanitizer is not None:
                            self._sanitizer.on_acquired(txn_id, resource, mode)
                        return
                    if waiter.victim:
                        self.stats.deadlocks += 1
                        raise DeadlockError(
                            f"transaction {txn_id} chosen as deadlock victim "
                            f"waiting for {mode.name} on {resource!r}"
                        )
                    victim = self._detect_deadlock(txn_id)
                    if victim is not None:
                        if victim == txn_id:
                            self.stats.deadlocks += 1
                            raise DeadlockError(
                                f"transaction {txn_id} chosen as deadlock "
                                f"victim waiting for {mode.name} on {resource!r}"
                            )
                        # Another transaction is the victim: mark it, wake
                        # it, then wait like everyone else — it needs the
                        # mutex (released by cond.wait below) to abort.
                        self._mark_victim(victim)
                        self._cond.notify_all()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats.timeouts += 1
                        raise LockTimeoutError(
                            f"transaction {txn_id} timed out waiting for "
                            f"{mode.name} on {resource!r}"
                        )
                    fire("lock.wait")
                    self._cond.wait(min(slice_s, remaining))
                    slice_s = min(slice_s * 2, self.poll_interval)
            finally:
                if waiter in record.waiters:
                    record.waiters.remove(waiter)
                if not record.granted and not record.waiters:
                    self._table.pop(resource, None)
                self.stats.wait_time_s += time.monotonic() - started

    def _try_grant(self, txn_id: int, resource: Resource, mode: LockMode) -> bool:
        """Grant if compatible with all *other* holders.  Caller holds _mu."""
        record = self._table.get(resource)
        if record is None:
            record = self._table.setdefault(resource, _LockRecord())
        held = record.granted.get(txn_id)
        if held is not None and mode in _COVERS[held]:
            return True  # already strong enough
        for other, other_mode in record.granted.items():
            if other == txn_id:
                continue
            if not compatible(other_mode, mode):
                return False
        combined = mode if held is None else _COMBINE[(held, mode)]
        record.granted[txn_id] = combined
        self._held.setdefault(txn_id, {})[resource] = combined
        return True

    # ------------------------------------------------------------------
    # Deadlock detection: the waits-for graph, rebuilt on demand.

    def _waits_for_edges(self) -> dict[int, set[int]]:
        edges: dict[int, set[int]] = {}
        for record in self._table.values():
            for waiter in record.waiters:
                held = record.granted.get(waiter.txn_id)
                for holder, holder_mode in record.granted.items():
                    if holder == waiter.txn_id:
                        continue
                    if held is not None and waiter.mode in _COVERS[held]:
                        continue  # stale waiter, about to be granted
                    if not compatible(holder_mode, waiter.mode):
                        edges.setdefault(waiter.txn_id, set()).add(holder)
        return edges

    def _detect_deadlock(self, start: int) -> int | None:
        """Find a cycle reachable from *start*; return the youngest member.

        The youngest transaction (largest id — ids are handed out
        monotonically) has done the least work, so aborting it wastes the
        least; this is also deterministic, which the tests rely on.
        """
        edges = self._waits_for_edges()
        path: list[int] = []
        on_path: set[int] = set()
        visited: set[int] = set()

        def dfs(node: int) -> list[int] | None:
            path.append(node)
            on_path.add(node)
            for succ in edges.get(node, ()):
                if succ in on_path:
                    return path[path.index(succ):]
                if succ not in visited:
                    cycle = dfs(succ)
                    if cycle is not None:
                        return cycle
            path.pop()
            on_path.remove(node)
            visited.add(node)
            return None

        cycle = dfs(start)
        if cycle is None:
            return None
        return max(cycle)

    def _mark_victim(self, txn_id: int) -> None:
        for record in self._table.values():
            for waiter in record.waiters:
                if waiter.txn_id == txn_id:
                    waiter.victim = True

    # ------------------------------------------------------------------
    # Release (strict 2PL: only at end of transaction)

    def release_all(self, txn_id: int) -> None:
        """Release every lock *txn_id* holds and wake the waiters."""
        with self._cond:
            resources = self._held.pop(txn_id, None)
            if not resources:
                return
            for resource in resources:
                record = self._table.get(resource)
                if record is None:
                    continue
                record.granted.pop(txn_id, None)
                if not record.granted and not record.waiters:
                    self._table.pop(resource, None)
            self._cond.notify_all()
        if self._sanitizer is not None:
            self._sanitizer.on_release_all(txn_id)

    # ------------------------------------------------------------------
    # Solo mode (single-session fast path)

    @property
    def solo_mode(self) -> bool:
        return self._solo

    def set_solo(self, solo: bool) -> None:
        """Enter or leave the single-session fast path.

        Caller must guarantee no statement is running (the session
        manager holds the statement latch across this call).  Leaving
        solo mode materialises every fast-path grant as a ``_LockRecord``
        entry in the exact combined mode the transaction asked for.
        Exactness matters for liveness, not just correctness: restart
        reinstatement re-acquires several in-doubt transactions' locks
        back-to-back, and over-approximating the first one's table IX as
        X would block the second's compatible IX until timeout.
        """
        if self._sanitizer is not None:
            self._sanitizer.on_solo_flip(
                solo, self._latch.held() if self._latch is not None else None
            )
        with self._cond:
            if solo == self._solo:
                return
            if not solo:
                for txn_id, modes in self._held.items():
                    for resource, held_mode in modes.items():
                        record = self._table.setdefault(resource, _LockRecord())
                        record.granted[txn_id] = held_mode
            self._solo = solo
            self.solo_epoch += 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Introspection (tests, the server's stats op, the benchmark)

    @property
    def sanitizer(self) -> "LockdepObserver | None":
        """The lockdep observer watching this manager, or None."""
        return self._sanitizer

    def held_by(self, txn_id: int) -> set[Resource]:
        with self._mu:
            return set(self._held.get(txn_id, ()))

    def holders(self, resource: Resource) -> dict[int, LockMode]:
        with self._mu:
            record = self._table.get(resource)
            return dict(record.granted) if record else {}

    def waiting(self) -> dict[Resource, list[int]]:
        with self._mu:
            return {
                resource: [w.txn_id for w in record.waiters]
                for resource, record in self._table.items()
                if record.waiters
            }

    def assert_idle(self) -> None:
        """Raise unless no locks are held or waited on (test hygiene)."""
        with self._mu:
            if self._table or self._held:
                raise ConcurrencyError(
                    f"lock manager not idle: {len(self._table)} resources, "
                    f"holders {sorted(self._held)}"
                )


# ----------------------------------------------------------------------
# Resource naming helpers shared by the DML hooks and the tests.


def table_resource(table: str) -> Resource:
    return ("table", table)


def key_resource(
    table: str, columns: Iterable[str], values: Iterable[object]
) -> Resource:
    """The lock resource covering one value of one key of one table.

    Both sides of the phantom-parent race build the same resource: the
    parent-delete path from the row it removes, the child-check path from
    the witness row its probe found.
    """
    return ("key", table, tuple(columns), tuple(values))
