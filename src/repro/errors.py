"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  The hierarchy mirrors the layers of the
engine: schema/catalog problems, storage problems, constraint violations
and trigger aborts.
"""

from __future__ import annotations

from typing import ClassVar


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A table schema or column definition is invalid or inconsistent."""


class CatalogError(ReproError):
    """A catalog operation referenced a missing or duplicate object."""


class StorageError(ReproError):
    """A low-level storage operation failed (bad rid, arity mismatch...)."""


class IndexError_(ReproError):
    """An index operation failed (named with a trailing underscore so we
    do not shadow the :class:`IndexError` builtin)."""


class QueryError(ReproError):
    """A query could not be planned or executed."""


class TransactionError(ReproError):
    """A transaction operation was used incorrectly (e.g. nested begin)."""


class TransactionStateError(TransactionError):
    """A new transaction was requested while one is already active on the
    same session; the message names the open transaction."""


class ConcurrencyError(ReproError):
    """Base class for multi-session locking failures."""


class DeadlockError(ConcurrencyError):
    """This transaction was chosen as the victim of a lock cycle.

    The waits-for deadlock detector aborts the youngest transaction in
    the cycle; the victim must roll back (releasing its locks) and may
    retry.  Retryable by design, like MySQL error 1213.
    """


class LockTimeoutError(ConcurrencyError):
    """A lock request exceeded its timeout.

    Raised instead of waiting forever when contention (or an undetected
    external cycle, e.g. through application-level resources) starves a
    request.  Retryable after rolling back, like MySQL error 1205.
    """


class SessionError(ConcurrencyError):
    """A session was used incorrectly (closed, wrong thread, ...)."""


class SerializationError(ConcurrencyError):
    """Commit-time validation failed under snapshot isolation.

    Raised when a recorded FK witness no longer exists in the latest
    committed state at commit time (the parent vanished between the
    insert-time probe and the commit).  The transaction is rolled back
    before this propagates; retryable, like PostgreSQL error 40001.
    """


class AnalysisError(ReproError):
    """A correctness-tooling check failed: the lockdep sanitizer found a
    potential deadlock or a locking-discipline violation
    (:func:`repro.analysis.lockdep.assert_clean`), or an analysis API was
    misused."""


class WalError(ReproError):
    """A write-ahead-log operation was used incorrectly (unknown
    transaction, recovery without a checkpoint...)."""


class TransientFault(ReproError):
    """An injected transient failure (the fault-injection analogue of a
    lock timeout or lost page write).  Retryable: callers are expected to
    roll back and retry under :func:`repro.testing.faults.retry_transient`."""


class SimulatedCrash(BaseException):
    """An injected crash: the process 'dies' at a fault point.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    that ``except Exception`` cleanup handlers along the unwind path do
    not run — a real crash gives in-memory state no chance to tidy up.
    Only the crash harness catches this; recovery then proceeds from the
    write-ahead log.
    """


class IntegrityError(ReproError):
    """Base class for integrity-constraint violations."""


class KeyViolation(IntegrityError):
    """A candidate/primary key would be violated by the attempted write."""


class ReferentialIntegrityViolation(IntegrityError):
    """A foreign key would be violated by the attempted write.

    Mirrors the SQL-state ``'02000'`` signal raised by the paper's
    generated triggers ("No reference is found, enter a valid value").
    """

    sqlstate: ClassVar[str] = "02000"


class RestrictViolation(IntegrityError):
    """A delete/update was rejected by a RESTRICT / NO ACTION referential
    action because referencing children exist."""


class TriggerAbort(ReproError):
    """A BEFORE trigger vetoed the triggering statement."""
