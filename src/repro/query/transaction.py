"""Transactions: atomic batches of updates with undo-log rollback.

The paper's §7.4 measures "transactions, that is, atomic sets of update
operations" (5,000 inserts, 2,000 deletes).  This module provides the
substrate: a transaction collects an undo record per physical row
mutation and can roll the database back to its starting state.  Rollback
bypasses triggers and constraints — it restores physical state exactly,
including index contents and statistics.

Two robustness layers sit on top of the flat undo log:

* **Savepoints** — nested scopes with partial rollback
  (:meth:`Transaction.savepoint`).  The §6.1 trigger state-loop and the
  §9 batch paths wrap per-row / per-state work in a savepoint so one
  failed check unwinds only its own writes.  Rolling back to a savepoint
  emits *compensating* records to the write-ahead log, so a committed
  transaction's log replays to exactly the state it left behind.
* **Write-ahead logging** — when the database has a
  :class:`~repro.storage.wal.WriteAheadLog` attached, every logged
  mutation is mirrored into it; commit writes the durability marker.

Lifecycle errors are explicit: committing twice, committing after a
rollback, rolling back twice, or logging to a closed transaction each
raise :class:`~repro.errors.TransactionError` naming the actual state.
After a simulated crash (:meth:`Database.freeze_for_crash`) the
transaction's methods become no-ops: a dead process cannot tidy up, and
recovery owns the state from then on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import SerializationError, TransactionError, TransactionStateError

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.database import Database

#: Undo entries:
#:   ("insert", table, rid, row)           — undone by deleting rid
#:   ("delete", table, rid, row)           — undone by restoring the row
#:   ("update", table, rid, old, new)      — undone by writing old back
UndoEntry = tuple

#: Lifecycle states.
_OPEN = "open"
_COMMITTED = "committed"
_ROLLED_BACK = "rolled back"


def _inverse(entry: UndoEntry) -> UndoEntry:
    """The mutation that undoes *entry* (for WAL compensation records)."""
    kind = entry[0]
    if kind == "insert":
        return ("delete",) + entry[1:]
    if kind == "delete":
        return ("insert",) + entry[1:]
    if kind == "update":
        __, table, rid, old, new = entry
        return ("update", table, rid, new, old)
    raise TransactionError(f"unknown undo entry {entry!r}")


class Savepoint:
    """A named position inside a transaction's undo log.

    Obtained from :meth:`Transaction.savepoint`; usable directly or as a
    context manager (release on success, partial rollback on error)::

        with txn.savepoint():
            risky_per_row_work()      # failure unwinds only this scope
    """

    __slots__ = ("name", "_txn", "_mark", "_active")

    def __init__(self, txn: "Transaction", name: str, mark: int) -> None:
        self.name = name
        self._txn = txn
        self._mark = mark
        self._active = True

    @property
    def is_active(self) -> bool:
        return self._active

    def rollback(self) -> None:
        """Undo everything logged since this savepoint (it stays active)."""
        self._txn.rollback_to(self)

    def release(self) -> None:
        """Forget this savepoint without undoing anything."""
        self._txn.release(self)

    def __enter__(self) -> "Savepoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False  # released / invalidated explicitly
        if self._txn._db._crashed:
            return False  # crashed: recovery owns the state now
        if exc_type is None:
            self.release()
        else:
            self.rollback()
            self.release()
        return False

    def __repr__(self) -> str:
        state = "active" if self._active else "released"
        return f"<Savepoint {self.name} @{self._mark} ({state})>"


class Transaction:
    """One open transaction over a database.

    Usable as a context manager: commits on success, rolls back when the
    block raises.  Nested ``begin`` is rejected (the engine models
    MySQL's flat transactions, which the paper's experiments use) — use
    :meth:`savepoint` or :meth:`Database.begin_nested` for nested scopes.
    """

    def __init__(self, db: "Database") -> None:
        open_txn = db.active_transaction
        if open_txn is not None:
            raise TransactionStateError(
                f"cannot begin: {open_txn.name} is already active"
                + (
                    f" on session {open_txn.session.session_id}"
                    if open_txn.session is not None
                    else " on this database"
                )
            )
        self._db = db
        self.txn_id = db._next_txn_id()
        #: The session this transaction belongs to (None outside a
        #: multi-session context); bound at begin time so lock release
        #: and error messages know their owner.
        self.session = db.current_session
        self._undo: list[UndoEntry] = []
        self._state = _OPEN
        self._savepoints: list[Savepoint] = []
        self._sp_counter = 0
        #: FK witnesses adopted by this transaction's child-side checks
        #: (parent table, key columns, key values) — re-validated against
        #: the latest committed state at commit time under MVCC.
        self._witnesses: set[tuple] = set()
        wal = db.wal
        self.wal_txn_id: int | None = wal.begin() if wal is not None else None
        db._active_transaction = self

    @property
    def name(self) -> str:
        return f"transaction #{self.txn_id}"

    # ------------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self._state == _OPEN

    def __len__(self) -> int:
        """Number of logged row mutations."""
        return len(self._undo)

    def log(self, entry: UndoEntry) -> None:
        if self._db._crashed:
            return  # the process is 'dead'; nothing more gets logged
        self._require_open("log to")
        self._undo.append(entry)
        if self.wal_txn_id is not None:
            self._db.wal.log_mutation(self.wal_txn_id, entry)

    # ------------------------------------------------------------------
    # Savepoints

    def savepoint(self, name: str | None = None) -> Savepoint:
        """Mark the current position for partial rollback."""
        self._require_open("create a savepoint in")
        if name is None:
            self._sp_counter += 1
            name = f"sp{self._sp_counter}"
        sp = Savepoint(self, name, len(self._undo))
        self._savepoints.append(sp)
        return sp

    def rollback_to(self, sp: Savepoint) -> None:
        """Physically undo every mutation logged after *sp*.

        Savepoints created after *sp* are invalidated; *sp* itself stays
        active (SQL ``ROLLBACK TO SAVEPOINT`` semantics).  Each undone
        mutation emits a compensating record to the write-ahead log, so
        replaying a later commit reproduces the partial rollback.
        """
        self._require_open("roll back a savepoint in")
        self._require_own_active(sp)
        undone = self._undo[sp._mark:]
        del self._undo[sp._mark:]
        self._invalidate_after(sp)
        for entry in reversed(undone):
            self._undo_entry(entry)
            if self.wal_txn_id is not None:
                self._db.wal.log_mutation(self.wal_txn_id, _inverse(entry))

    def release(self, sp: Savepoint) -> None:
        """Drop *sp* (and any savepoints nested inside it); no data change."""
        self._require_open("release a savepoint in")
        self._require_own_active(sp)
        self._invalidate_after(sp)
        sp._active = False
        self._savepoints.remove(sp)

    def _require_own_active(self, sp: Savepoint) -> None:
        if sp._txn is not self:
            raise TransactionError(
                f"savepoint {sp.name!r} belongs to a different transaction"
            )
        if not sp._active:
            raise TransactionError(f"savepoint {sp.name!r} is no longer active")

    def _invalidate_after(self, sp: Savepoint) -> None:
        position = self._savepoints.index(sp)
        for later in self._savepoints[position + 1:]:
            later._active = False
        del self._savepoints[position + 1:]

    # ------------------------------------------------------------------

    def record_witness(self, witness: tuple) -> None:
        """Remember an adopted FK witness for commit-time re-validation."""
        self._witnesses.add(witness)

    def commit(self) -> None:
        """Make the batch permanent and close the transaction."""
        if self._db._crashed:
            return  # a crashed process commits nothing
        if self._state != _OPEN:
            raise TransactionError(f"cannot commit: transaction {self._state}")
        versions = self._db.versions
        if versions is not None and self._witnesses:
            # Commit-time witness re-check: every parent this transaction
            # adopted must still exist in the latest committed state.  On
            # failure the transaction rolls itself back (releasing locks)
            # and raises a retryable serialization error.
            from ..concurrency import hooks

            try:
                hooks.revalidate_witnesses(self._db, self)
            except SerializationError:
                self.rollback()
                raise
        # A pending session annotation (exactly-once ledger entry) rides
        # inside the commit record; consume it even without a WAL so a
        # stale note can never attach to a later commit.
        note = (
            self.session._take_commit_note()
            if self.session is not None
            else None
        )
        if self.wal_txn_id is not None:
            self._db.wal.commit(self.wal_txn_id, note)
        if versions is not None:
            versions.on_commit(self.txn_id)
        self._undo.clear()
        self._close(_COMMITTED)

    def rollback(self) -> None:
        """Physically restore every mutated row, newest first.

        Rollback bypasses triggers and constraints (it restores state,
        it does not re-execute logic), but *physical undo observers*
        registered on the database are notified per undone entry so
        engine-level auxiliary structures (see
        :mod:`repro.core.engine_level`) stay synchronised.
        """
        if self._db._crashed:
            return  # a crashed process cannot clean up after itself
        if self._state != _OPEN:
            raise TransactionError(
                f"cannot roll back: transaction {self._state}"
            )
        for entry in reversed(self._undo):
            self._undo_entry(entry)
        self._undo.clear()
        versions = self._db.versions
        if versions is not None:
            # Physical undo restored the heap tips; just drop the overlay.
            versions.on_rollback(self.txn_id)
        if self.session is not None:
            self.session._take_commit_note()  # discard: nothing committed
        if self.wal_txn_id is not None:
            self._db.wal.abort(self.wal_txn_id)
        self._close(_ROLLED_BACK)

    def _undo_entry(self, entry: UndoEntry) -> None:
        kind, table_name = entry[0], entry[1]
        table = self._db.table(table_name)
        if kind == "insert":
            __, __, rid, __row = entry
            table.delete_rid(rid)
        elif kind == "delete":
            __, __, rid, row = entry
            table.restore_row(rid, row)
        elif kind == "update":
            __, __, rid, old, __new = entry
            table.update_rid(rid, old)
        else:  # pragma: no cover - defensive
            raise TransactionError(f"unknown undo entry {entry!r}")
        for observer in self._db.physical_undo_observers:
            observer(entry)

    def _require_open(self, verb: str) -> None:
        if self._state != _OPEN:
            raise TransactionError(
                f"cannot {verb} a {self._state} transaction"
            )

    def _close(self, state: str) -> None:
        self._state = state
        for sp in self._savepoints:
            sp._active = False
        self._savepoints.clear()
        # Clear the *owning* slot, not whatever session the current
        # thread happens to be bound to.
        if self.session is not None:
            self.session._transaction = None
        else:
            self._db._default_txn = None
        # Strict 2PL: every lock this transaction acquired is released
        # only now, after its fate (commit or rollback) is decided.
        self._db._release_locks_for(self)

    # ------------------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._db._crashed:
            return False  # leave the torn state for recovery
        if self._state != _OPEN:
            return False  # already committed/rolled back explicitly
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False


class SavepointScope:
    """A savepoint dressed as a transaction-like nested scope.

    Returned by :meth:`Database.begin_nested` when a transaction is
    already active: ``commit()`` releases the savepoint (the outer
    transaction still decides overall fate), ``rollback()`` undoes just
    this scope.  As a context manager it mirrors :class:`Transaction`.
    """

    def __init__(self, txn: Transaction) -> None:
        self._txn = txn
        self._sp = txn.savepoint()
        self._closed = False

    @property
    def is_open(self) -> bool:
        return not self._closed and self._sp.is_active

    def commit(self) -> None:
        if self._closed:
            raise TransactionError("nested scope is already closed")
        self._closed = True
        if self._sp.is_active:
            self._sp.release()

    def rollback(self) -> None:
        if self._closed:
            raise TransactionError("nested scope is already closed")
        self._closed = True
        if self._sp.is_active:
            self._sp.rollback()
            self._sp.release()

    def __enter__(self) -> "SavepointScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._txn._db._crashed or self._closed or not self._sp.is_active:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
