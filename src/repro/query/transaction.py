"""Transactions: atomic batches of updates with undo-log rollback.

The paper's §7.4 measures "transactions, that is, atomic sets of update
operations" (5,000 inserts, 2,000 deletes).  This module provides the
substrate: a transaction collects an undo record per physical row
mutation and can roll the database back to its starting state.  Rollback
bypasses triggers and constraints — it restores physical state exactly,
including index contents and statistics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.database import Database

#: Undo entries:
#:   ("insert", table, rid, row)           — undone by deleting rid
#:   ("delete", table, rid, row)           — undone by restoring the row
#:   ("update", table, rid, old, new)      — undone by writing old back
UndoEntry = tuple


class Transaction:
    """One open transaction over a database.

    Usable as a context manager: commits on success, rolls back when the
    block raises.  Nested transactions are rejected (the engine models
    MySQL's flat transactions, which the paper's experiments use).
    """

    def __init__(self, db: "Database") -> None:
        if db.active_transaction is not None:
            raise TransactionError("a transaction is already active")
        self._db = db
        self._undo: list[UndoEntry] = []
        self._open = True
        db._active_transaction = self

    # ------------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self._open

    def __len__(self) -> int:
        """Number of logged row mutations."""
        return len(self._undo)

    def log(self, entry: UndoEntry) -> None:
        if not self._open:
            raise TransactionError("transaction is closed")
        self._undo.append(entry)

    # ------------------------------------------------------------------

    def commit(self) -> None:
        """Make the batch permanent and close the transaction."""
        self._require_open()
        self._undo.clear()
        self._close()

    def rollback(self) -> None:
        """Physically restore every mutated row, newest first.

        Rollback bypasses triggers and constraints (it restores state,
        it does not re-execute logic), but *physical undo observers*
        registered on the database are notified per undone entry so
        engine-level auxiliary structures (see
        :mod:`repro.core.engine_level`) stay synchronised.
        """
        self._require_open()
        observers = self._db.physical_undo_observers
        for entry in reversed(self._undo):
            kind, table_name = entry[0], entry[1]
            table = self._db.table(table_name)
            if kind == "insert":
                __, __, rid, __row = entry
                table.delete_rid(rid)
            elif kind == "delete":
                __, __, rid, row = entry
                table.restore_row(rid, row)
            elif kind == "update":
                __, __, rid, old, __new = entry
                table.update_rid(rid, old)
            else:  # pragma: no cover - defensive
                raise TransactionError(f"unknown undo entry {entry!r}")
            for observer in observers:
                observer(entry)
        self._undo.clear()
        self._close()

    def _require_open(self) -> None:
        if not self._open:
            raise TransactionError("transaction is closed")

    def _close(self) -> None:
        self._open = False
        self._db._active_transaction = None

    # ------------------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._open:
            return False  # already committed/rolled back explicitly
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False
