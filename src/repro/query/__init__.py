"""Query layer: predicates, planning, execution, DML, transactions."""

from .explain import explain, explain_path
from .planner import AccessPath, plan
from .predicate import (
    ALWAYS,
    And,
    Cmp,
    Eq,
    IsNotNull,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
    equalities,
)
from .transaction import Savepoint, SavepointScope, Transaction

__all__ = [
    "explain",
    "explain_path",
    "AccessPath",
    "plan",
    "ALWAYS",
    "And",
    "Cmp",
    "Eq",
    "IsNotNull",
    "IsNull",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "equalities",
    "Savepoint",
    "SavepointScope",
    "Transaction",
]
