"""Prepared probes: the enforcement triggers' hot search primitives.

The generated triggers of §6.1 issue the same few probe shapes millions
of times during an experiment:

* *subsumption probe* — does some parent match the total components of a
  foreign-key value? (child insert / update);
* *state probe* — does some child exist in null-state S referencing the
  removed parent key? (parent delete, one per state);
* *alternative-parent probe* — does a parent other than the removed one
  match the state's total columns?

A real engine runs these as prepared statements; building full predicate
trees per probe would make Python object construction — not the index
structure — the measured quantity.  Each probe shape (table, equality
columns, IS NULL columns) is compiled once into a :class:`PreparedProbe`
holding the resolved column positions, the chosen access path and the
optimizer dive list, cached on the table and invalidated through the
catalog epoch counter (``table.indexes.version``, bumped on every index
create/drop).  Executing a probe then just binds values: no per-call
planning, no dict/zip construction.  The cost accounting is identical to
the per-call-planned path — ``planner_candidates`` per execution, real
index dives, the same scan counters — so the experiment's logical costs
are unchanged; only interpreter overhead is removed.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from ..indexes.definition import IndexKind
from ..indexes.keys import encode_component, encode_key
from ..nulls import NULL
from ..storage.table import Table
from .planner import _plan_uncached
from .predicate import ConjunctionProfile

#: Cap on distinct probe shapes cached per table; enforcement issues a
#: handful per foreign key (one per null-state), so this never trips on
#: the paper's workloads — it only bounds pathological callers.
_PROBE_CACHE_LIMIT = 256


class PreparedProbe:
    """One compiled probe shape over one table.

    Holds everything value-independent: schema positions of the equality
    and IS NULL columns, the access path chosen by the planner, the slot
    indices that bind prefix values, the residual filter, and the list of
    B-tree indexes the optimizer dives into per execution.  Re-plans
    itself lazily whenever ``table.indexes.version`` has moved since the
    last execution.
    """

    __slots__ = (
        "table",
        "columns",
        "null_columns",
        "_eq_positions",
        "_null_positions",
        "_version",
        "_full_scan",
        "_scan",
        "_first",
        "_prefix_slots",
        "_residual",
        "_dives",
    )

    def __init__(
        self,
        table: Table,
        columns: tuple[str, ...],
        null_columns: tuple[str, ...],
    ) -> None:
        self.table = table
        self.columns = columns
        self.null_columns = null_columns
        schema = table.schema
        self._eq_positions = tuple(
            (schema.position(c), slot) for slot, c in enumerate(columns)
        )
        self._null_positions = tuple(schema.position(c) for c in null_columns)
        self._version = -1  # forces planning on first execution
        self._full_scan = True
        self._scan = None
        self._first = None
        self._prefix_slots: tuple[int, ...] = ()
        self._residual: tuple[tuple[int, int], ...] = ()
        self._dives: tuple[tuple[Any, int], ...] = ()

    # ------------------------------------------------------------------

    def _plan(self, values: Sequence[Any]) -> None:
        """Choose the access path for this shape (first call / new epoch).

        Planning is value-dependent only through the statistics estimate,
        exactly like the plan cache it replaces: the first execution after
        an epoch change decides the path for all later ones.
        """
        table = self.table
        columns = self.columns
        profile = ConjunctionProfile.from_parts(
            dict(zip(columns, values)), frozenset(self.null_columns)
        )
        slot_of = {c: slot for slot, c in enumerate(columns)}
        dives = []
        for index in table.indexes:
            if index.kind is IndexKind.BTREE and index.columns[0] in slot_of:
                dives.append((index, slot_of[index.columns[0]]))
        self._dives = tuple(dives)

        path = _plan_uncached(table, profile, True)
        if path.index is None:
            self._full_scan = True
            self._scan = None
            self._first = None
            return
        index = path.index
        prefix_columns = index.columns[: len(path.prefix_values)]
        self._full_scan = False
        self._prefix_slots = tuple(slot_of[c] for c in prefix_columns)
        bound = set(prefix_columns)
        schema = table.schema
        self._residual = tuple(
            (schema.position(c), slot)
            for slot, c in enumerate(columns)
            if c not in bound
        )
        structure = index._structure
        if index.kind is IndexKind.BTREE:
            self._scan = structure.scan_prefix
            self._first = structure.first_with_prefix
        else:
            self._scan = structure.lookup
            self._first = structure.first_with_key

    def _bind(self, values: Sequence[Any]) -> None:
        """Per-execution planner work: epoch check, candidate charge, dives."""
        table = self.table
        indexes = table.indexes
        if indexes.version != self._version:
            self._plan(values)
            self._version = indexes.version
        table.tracker.count("planner_candidates", len(indexes))
        for index, slot in self._dives:
            index.dive(values[slot])

    # ------------------------------------------------------------------

    def exists(self, values: Sequence[Any], view: Any = None) -> bool:
        """LIMIT-1 probe: any row with ``columns = values`` (total
        values) and ``null_columns IS NULL``?

        With a *view* (an MVCC :class:`~repro.storage.versions.ReadView`)
        the probe answers as of the view's read LSN instead of the
        committed tip; the lock-free snapshot read path and the
        commit-time witness re-check both go through this.
        """
        if view is not None:
            return self._find_view(values, view) is not None
        self._bind(values)
        table = self.table
        tracker = table.tracker
        null_positions = self._null_positions

        if self._full_scan:
            tracker.count("full_scans")
            eq_positions = self._eq_positions
            examined = 0
            try:
                for __, row in table.heap.scan_unordered():
                    examined += 1
                    if _matches(row, eq_positions, null_positions, values):
                        return True
                return False
            finally:
                tracker.count("rows_examined", examined)

        prefix = tuple(
            [encode_component(values[slot]) for slot in self._prefix_slots]
        )
        residual = self._residual
        if not residual and not null_positions:
            if self._first(prefix) is None:
                return False
            tracker.count("rows_fetched", 1)
            tracker.count("rows_examined", 1)
            return True

        get_row = table.heap.get
        fetched = 0
        try:
            for __, rid in self._scan(prefix):
                fetched += 1
                if _matches(get_row(rid), residual, null_positions, values):
                    return True
            return False
        finally:
            tracker.count("rows_fetched", fetched)
            tracker.count("rows_examined", fetched)

    def find(self, values: Sequence[Any], view: Any = None) -> Sequence[Any] | None:
        """LIMIT-1 *witness* probe: the first matching row, or None."""
        if view is not None:
            return self._find_view(values, view)
        self._bind(values)
        table = self.table
        tracker = table.tracker
        null_positions = self._null_positions
        get_row = table.heap.get

        if self._full_scan:
            tracker.count("full_scans")
            eq_positions = self._eq_positions
            examined = 0
            try:
                for __, row in table.heap.scan_unordered():
                    examined += 1
                    if _matches(row, eq_positions, null_positions, values):
                        return row
                return None
            finally:
                tracker.count("rows_examined", examined)

        prefix = tuple(
            [encode_component(values[slot]) for slot in self._prefix_slots]
        )
        residual = self._residual
        fetched = 0
        try:
            for __, rid in self._scan(prefix):
                fetched += 1
                row = get_row(rid)
                if _matches(row, residual, null_positions, values):
                    return row
            return None
        finally:
            tracker.count("rows_fetched", fetched)
            tracker.count("rows_examined", fetched)


    def _find_view(self, values: Sequence[Any], view: Any) -> Sequence[Any] | None:
        """The probe against an MVCC read view.

        Same access path and cost accounting as the tip-state probe, with
        two differences: rids the view marks divergent are skipped (their
        heap state must not be trusted) and then re-resolved through
        :meth:`ReadView.row` under the *full* equality check — and the
        no-residual ``_first`` shortcut is never taken, since an index
        hit alone cannot prove the row is visible at the read LSN.
        """
        self._bind(values)
        table = self.table
        tracker = table.tracker
        null_positions = self._null_positions
        eq_positions = self._eq_positions
        name = table.name
        divergent = view.divergent_rids(name)

        if self._full_scan:
            tracker.count("full_scans")
            examined = 0
            try:
                for rid, row in table.heap.scan_unordered():
                    if rid in divergent:
                        continue
                    examined += 1
                    if _matches(row, eq_positions, null_positions, values):
                        return row
            finally:
                tracker.count("rows_examined", examined)
        else:
            prefix = tuple(
                [encode_component(values[slot]) for slot in self._prefix_slots]
            )
            residual = self._residual
            get_row = table.heap.get
            fetched = 0
            try:
                for __, rid in self._scan(prefix):
                    if rid in divergent:
                        continue
                    fetched += 1
                    row = get_row(rid)
                    if _matches(row, residual, null_positions, values):
                        return row
            finally:
                tracker.count("rows_fetched", fetched)
                tracker.count("rows_examined", fetched)

        examined = 0
        try:
            for rid in sorted(divergent):
                old_row = view.row(name, rid)
                if old_row is None:
                    continue
                examined += 1
                if _matches(old_row, eq_positions, null_positions, values):
                    return old_row
            return None
        finally:
            tracker.count("rows_examined", examined)


def _matches(
    row: Sequence[Any],
    eq_position_slots: tuple[tuple[int, int], ...],
    null_positions: tuple[int, ...],
    values: Sequence[Any],
) -> bool:
    for position, slot in eq_position_slots:
        actual = row[position]
        if actual is NULL or actual != values[slot]:
            return False
    for position in null_positions:
        if row[position] is not NULL:
            return False
    return True


def prepared(
    table: Table,
    columns: Sequence[str],
    null_columns: Sequence[str] = (),
) -> PreparedProbe:
    """The cached :class:`PreparedProbe` for one shape on *table*."""
    key = (tuple(columns), tuple(null_columns))
    cache = table._probe_cache
    probe = cache.get(key)
    if probe is None:
        if len(cache) >= _PROBE_CACHE_LIMIT:
            cache.clear()
        probe = PreparedProbe(table, key[0], key[1])
        cache[key] = probe
    return probe


def exists_eq(
    table: Table,
    columns: Sequence[str],
    values: Sequence[Any],
    null_columns: Sequence[str] = (),
    view: Any = None,
) -> bool:
    """LIMIT-1 probe: any row with ``columns = values`` (total values)
    and ``null_columns IS NULL``?

    Equivalent to ``executor.exists(db, table, equalities(...))`` but
    through the prepared-probe cache: no predicate objects, no per-call
    planning.  With *view*, answers as of that MVCC read view.
    """
    return prepared(table, columns, null_columns).exists(values, view)


def find_eq(
    table: Table,
    columns: Sequence[str],
    values: Sequence[Any],
    null_columns: Sequence[str] = (),
    view: Any = None,
) -> Sequence[Any] | None:
    """LIMIT-1 *witness* probe: the first row with ``columns = values``
    (and ``null_columns IS NULL``), or None.

    Same plan and cost accounting as :func:`exists_eq`, but the matching
    row itself is returned — the concurrency layer locks the witness's
    full key before trusting the probe (see
    :func:`repro.concurrency.hooks.verify_parent_exists`).
    """
    return prepared(table, columns, null_columns).find(values, view)


def probe_order(
    probe: PreparedProbe,
    keys: Sequence[tuple[Any, ...]],
    first_key: tuple[Any, ...],
) -> list[tuple[Any, ...]]:
    """Deterministic probe order for a deduplicated key batch.

    Sorted by encoded key — except when *probe* has a replan pending
    (new shape or moved catalog epoch): its next execution fixes the
    access path using that execution's values, so the batch must plan
    with the same key a per-probe loop would have used — the first one
    in arrival order.  Without this, sorting could plan the shape with a
    different key, pick a different index, and break the bit-for-bit
    charge parity between the batched and per-probe paths.
    """
    ordered = sorted(keys, key=encode_key)
    if probe._version != probe.table.indexes.version and ordered[0] != first_key:
        ordered.remove(first_key)
        ordered.insert(0, first_key)
    return ordered


def exists_eq_many(
    table: Table,
    columns: Sequence[str],
    values_list: Sequence[Sequence[Any]],
    null_columns: Sequence[str] = (),
    view: Any = None,
) -> list[bool]:
    """Vectorized :func:`exists_eq`: one answer per entry of
    *values_list*, walking the index once per **distinct** key.

    Keys are deduplicated and probed in encoded-key order, so a batch of
    K rows referencing m distinct parents costs m sorted descents instead
    of K arbitrary ones.  The *logical* cost counters stay bit-identical
    to K independent :func:`exists_eq` calls: the table is not mutated
    between the probes of one batch, so every duplicate of a key would
    have charged exactly what its first probe charged — the duplicates'
    charges are replayed from a tracker snapshot delta instead of from
    re-descending.
    """
    if not values_list:
        return []
    probe = prepared(table, columns, null_columns)
    tracker = table.tracker
    groups: dict[tuple[Any, ...], list[int]] = {}
    for position, values in enumerate(values_list):
        groups.setdefault(tuple(values), []).append(position)
    results = [False] * len(values_list)
    for key in probe_order(probe, groups, tuple(values_list[0])):
        positions = groups[key]
        before = tracker.snapshot() if len(positions) > 1 else None
        hit = probe.exists(key, view)
        if before is not None:
            delta = tracker.snapshot().diff(before)
            extra = len(positions) - 1
            for name, amount in delta.counters.items():
                if amount:
                    tracker.count(name, amount * extra)
        for position in positions:
            results[position] = hit
    return results
