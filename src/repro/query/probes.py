"""Prepared probes: the enforcement triggers' hot search primitives.

The generated triggers of §6.1 issue the same few probe shapes millions
of times during an experiment:

* *subsumption probe* — does some parent match the total components of a
  foreign-key value? (child insert / update);
* *state probe* — does some child exist in null-state S referencing the
  removed parent key? (parent delete, one per state);
* *alternative-parent probe* — does a parent other than the removed one
  match the state's total columns?

A real engine runs these as prepared statements; building full predicate
trees per probe would make Python object construction — not the index
structure — the measured quantity.  These functions plan through the
same :mod:`repro.query.planner` (plan cache, index dives, leftmost-prefix
rule) and charge the same cost counters as the general executor, so the
experiment's logical costs are identical; only interpreter overhead is
removed.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from ..nulls import NULL
from ..storage.table import Table
from .planner import plan_profile
from .predicate import ConjunctionProfile


def exists_eq(
    table: Table,
    columns: Sequence[str],
    values: Sequence[Any],
    null_columns: Sequence[str] = (),
) -> bool:
    """LIMIT-1 probe: any row with ``columns = values`` (total values)
    and ``null_columns IS NULL``?

    Equivalent to ``executor.exists(db, table, equalities(...))`` but
    without predicate-object construction.
    """
    eq = dict(zip(columns, values))
    profile = ConjunctionProfile.from_parts(eq, frozenset(null_columns))
    path = plan_profile(table, profile)
    schema = table.schema
    eq_positions = [(schema.position(c), v) for c, v in eq.items()]
    null_positions = [schema.position(c) for c in null_columns]
    tracker = table.tracker

    if path.is_full_scan:
        tracker.count("full_scans")
        examined = 0
        try:
            for __, row in table.heap.scan_unordered():
                examined += 1
                if _row_matches(row, eq_positions, null_positions):
                    return True
            return False
        finally:
            tracker.count("rows_examined", examined)

    assert path.index is not None
    bound = set(path.index.columns[: len(path.prefix_values)])
    residual_eq = [
        (schema.position(c), v) for c, v in eq.items() if c not in bound
    ]
    get_row = table.heap.get
    fetched = 0
    try:
        for rid in path.index.scan_equal(path.prefix_values):
            fetched += 1
            if not residual_eq and not null_positions:
                return True
            row = get_row(rid)
            if _row_matches(row, residual_eq, null_positions):
                return True
        return False
    finally:
        tracker.count("rows_fetched", fetched)
        tracker.count("rows_examined", fetched)


def find_eq(
    table: Table,
    columns: Sequence[str],
    values: Sequence[Any],
    null_columns: Sequence[str] = (),
) -> Sequence[Any] | None:
    """LIMIT-1 *witness* probe: the first row with ``columns = values``
    (and ``null_columns IS NULL``), or None.

    Same plan and cost accounting as :func:`exists_eq`, but the matching
    row itself is returned — the concurrency layer locks the witness's
    full key before trusting the probe (see
    :func:`repro.concurrency.hooks.verify_parent_exists`).
    """
    eq = dict(zip(columns, values))
    profile = ConjunctionProfile.from_parts(eq, frozenset(null_columns))
    path = plan_profile(table, profile)
    schema = table.schema
    eq_positions = [(schema.position(c), v) for c, v in eq.items()]
    null_positions = [schema.position(c) for c in null_columns]
    tracker = table.tracker

    if path.is_full_scan:
        tracker.count("full_scans")
        examined = 0
        try:
            for __, row in table.heap.scan_unordered():
                examined += 1
                if _row_matches(row, eq_positions, null_positions):
                    return row
            return None
        finally:
            tracker.count("rows_examined", examined)

    assert path.index is not None
    bound = set(path.index.columns[: len(path.prefix_values)])
    residual_eq = [
        (schema.position(c), v) for c, v in eq.items() if c not in bound
    ]
    get_row = table.heap.get
    fetched = 0
    try:
        for rid in path.index.scan_equal(path.prefix_values):
            fetched += 1
            row = get_row(rid)
            if _row_matches(row, residual_eq, null_positions):
                return row
        return None
    finally:
        tracker.count("rows_fetched", fetched)
        tracker.count("rows_examined", fetched)


def _row_matches(
    row: Sequence[Any],
    eq_positions: list[tuple[int, Any]],
    null_positions: Sequence[int],
) -> bool:
    for position, value in eq_positions:
        actual = row[position]
        if actual is NULL or actual != value:
            return False
    for position in null_positions:
        if row[position] is not NULL:
            return False
    return True
