"""Referential-integrity enforcement logic shared by the native DML path
and the generated triggers.

Two operations need enforcement (paper §3): writes that create a child
tuple (insert into C / update of C), and writes that remove a parent
tuple (delete from P / update of P).  The functions here implement both,
for all three MATCH semantics, driving every search through the planner
so the installed index structure determines the cost — which is the whole
point of the paper.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from ..concurrency import hooks
from ..constraints.actions import ReferentialAction
from ..constraints.foreign_key import ForeignKey, MatchSemantics
from ..core.states import iter_null_states
from ..errors import IntegrityError, ReferentialIntegrityViolation, RestrictViolation
from ..nulls import NULL, is_total
from ..testing.faults import fire
from . import executor, probes
from .predicate import Predicate

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.database import Database


# ----------------------------------------------------------------------
# Child-side: inserting / updating a referencing tuple


def _subsumption_shape(
    fk: ForeignKey, child_fk: Sequence[Any]
) -> tuple[tuple[str, ...], tuple[int, ...]]:
    """The (parent columns, child-FK slots) of *child_fk*'s total part.

    There are at most ``2^n`` shapes per foreign key — one per null
    mask — and the triggers revisit them millions of times, so the
    column lists are built once and memoized on the key itself.
    """
    mask = 0
    for i, v in enumerate(child_fk):
        if v is not NULL:
            mask |= 1 << i
    shapes = fk.__dict__.get("_subsumption_shapes")
    if shapes is None:
        shapes = fk._subsumption_shapes = {}
    shape = shapes.get(mask)
    if shape is None:
        slots = tuple(i for i, v in enumerate(child_fk) if v is not NULL)
        shape = (tuple(fk.key_columns[i] for i in slots), slots)
        shapes[mask] = shape
    return shape


def check_child_write(db: "Database", fk: ForeignKey, row: Sequence[Any]) -> None:
    """Veto a child write that would violate *fk* (paper §6.1, trigger on CS).

    Implements the BEFORE INSERT trigger's case analysis: one existence
    probe on the parent table, restricted to the total components of the
    new foreign-key value.  Raises
    :class:`~repro.errors.ReferentialIntegrityViolation` when no parent
    matches.
    """
    child_fk = fk.child_values(row)
    if fk.row_violates_shape(child_fk):
        raise ReferentialIntegrityViolation(
            f"{fk.name}: MATCH FULL forbids partially-null value {child_fk!r}"
        )
    if fk.row_satisfiable_without_lookup(child_fk):
        return
    if fk.match is MatchSemantics.SIMPLE and not is_total(child_fk):
        return
    db.tracker.count("state_checks")
    columns, slots = _subsumption_shape(fk, child_fk)
    values = [child_fk[i] for i in slots]
    # Single-session this is one exists probe; on a managed session the
    # probe also takes a shared lock on the witness parent's key, so the
    # adopted reference cannot be deleted before this transaction ends
    # (the partial-RI phantom-parent race).
    if not hooks.verify_parent_exists(db, fk, columns, values):
        raise ReferentialIntegrityViolation(
            f"{fk.name}: no reference is found for {child_fk!r}, "
            "enter a valid value"
        )


# ----------------------------------------------------------------------
# Parent-side: deleting / updating a referenced tuple


def restrict_parent_remove(db: "Database", fk: ForeignKey, parent_row: Sequence[Any]) -> None:
    """RESTRICT / NO ACTION check, run *before* the parent row vanishes.

    Rejects the removal when any child still references the parent and
    would lose its last parent (for partial semantics, total children
    always do; partial children only when no alternative parent exists).
    """
    if not fk.on_delete.rejects:
        return
    parent_key = fk.parent_values(parent_row)
    if fk.match is not MatchSemantics.PARTIAL:
        if executor.exists(db, fk.child_table, fk.exact_child_predicate(parent_key)):
            raise RestrictViolation(
                f"{fk.name}: children still reference {parent_key!r}"
            )
        return
    for state in iter_null_states(fk.n_columns, include_total=True, include_all_null=False):
        db.tracker.count("state_checks")
        child_pred = fk.child_state_predicate(parent_key, state)
        if not executor.exists(db, fk.child_table, child_pred):
            continue
        if not state:
            # total children: the deleted parent is their only parent
            raise RestrictViolation(
                f"{fk.name}: total children still reference {parent_key!r}"
            )
        if not _alternative_parent_exists(db, fk, parent_key, state, parent_row):
            raise RestrictViolation(
                f"{fk.name}: children in state {state!r} would lose their "
                f"last parent {parent_key!r}"
            )


def handle_parent_removed(
    db: "Database",
    fk: ForeignKey,
    parent_row: Sequence[Any],
    action: ReferentialAction | None = None,
) -> int:
    """Apply the referential action after a parent row was removed.

    This is the paper's AFTER DELETE trigger on PS (§6.1): first the
    total children of the deleted parent receive the action, then each
    of the ``2^n - 2`` partial states is probed — children exist in the
    state AND no alternative parent subsumes them — and orphaned states
    receive the action.  Returns the number of affected child rows.
    """
    if action is None:
        action = fk.on_delete
    if action.rejects:
        # Already vetoed in restrict_parent_remove before the removal.
        return 0
    parent_key = fk.parent_values(parent_row)
    affected = 0

    # 1. Children whose foreign key totally equals the deleted key: the
    #    referenced key is unique, so there is never an alternative.
    affected += _apply_action_scoped(
        db, fk, fk.exact_child_predicate(parent_key), action
    )

    if fk.match is not MatchSemantics.PARTIAL:
        return affected

    # 2. Each partial state: u = 1 .. n-1 null markers.  The per-state
    #    column lists are value-independent, so they are compiled once
    #    per foreign key and only the values bind per deletion.
    child = db.table(fk.child_table)
    parent = db.table(fk.parent_table)
    for state, child_cols, child_nulls, parent_cols, total_positions in _state_shapes(fk):
        fire("enforce.state_probe")
        db.tracker.count("state_checks")
        values = [parent_key[i] for i in total_positions]
        if not probes.exists_eq(
            child, child_cols, values, null_columns=child_nulls
        ):
            continue
        if probes.exists_eq(parent, parent_cols, values):
            # An alternative parent subsumes this state's children: the
            # parent row itself is already gone (AFTER DELETE), so any
            # hit is a genuine alternative.
            continue
        affected += _apply_action_scoped(
            db, fk, fk.child_state_predicate(parent_key, state), action
        )
    return affected


def _state_shapes(
    fk: ForeignKey,
) -> tuple[
    tuple[
        tuple[int, ...],
        tuple[str, ...],
        tuple[str, ...],
        tuple[str, ...],
        tuple[int, ...],
    ],
    ...,
]:
    """Per-state probe shapes of the §6.1 state loop, memoized on *fk*.

    One entry per partial null-state: (state, child equality columns,
    child IS NULL columns, parent equality columns, total positions).
    """
    shapes = fk.__dict__.get("_partial_state_shapes")
    if shapes is None:
        n = fk.n_columns
        built = []
        for state in iter_null_states(n, include_total=False, include_all_null=False):
            state_set = set(state)
            total_positions = tuple(i for i in range(n) if i not in state_set)
            built.append(
                (
                    state,
                    tuple(fk.fk_columns[i] for i in total_positions),
                    tuple(fk.fk_columns[i] for i in state),
                    tuple(fk.key_columns[i] for i in total_positions),
                    total_positions,
                )
            )
        shapes = fk._partial_state_shapes = tuple(built)
    return shapes


def _alternative_parent_exists(
    db: "Database",
    fk: ForeignKey,
    parent_key: Sequence[Any],
    state: Sequence[int],
    removed_row: Sequence[Any],
) -> bool:
    """Is there a parent, other than the removed one, matching the state's
    total components?  The probe constrains exactly the key columns the
    children in this state are total on."""
    columns = [
        fk.key_columns[i] for i in range(fk.n_columns) if i not in state
    ]
    values = [parent_key[i] for i in range(fk.n_columns) if i not in state]
    from .predicate import equalities

    predicate = equalities(columns, values)
    # The caller removes the parent row before this probe runs (AFTER
    # DELETE), so any hit is a genuine alternative.  When called before
    # the removal (RESTRICT path) the removed row itself may match; it
    # must be discounted.
    table = db.table(fk.parent_table)
    removed_key = tuple(removed_row)
    for __, row in executor.iter_matching(table, predicate):
        if tuple(row) != removed_key:
            return True
    return False


def _apply_action_scoped(
    db: "Database", fk: ForeignKey, child_pred: Predicate, action: ReferentialAction
) -> int:
    """Apply one referential action under a savepoint when possible.

    Inside a transaction, each step of the §6.1 state loop runs in its
    own nested scope: a failure (or injected fault) while actioning one
    state's children unwinds exactly that state's writes, leaving the
    earlier states' completed work intact for the caller to keep or roll
    back wholesale.
    """
    fire("enforce.apply_action")
    txn = db.active_transaction
    if txn is None or not txn.is_open:
        return _apply_action(db, fk, child_pred, action)
    with txn.savepoint():
        return _apply_action(db, fk, child_pred, action)


def _apply_action(
    db: "Database", fk: ForeignKey, child_pred: Predicate, action: ReferentialAction
) -> int:
    """Run one referential action over the children matching *child_pred*."""
    from . import dml

    if action is ReferentialAction.CASCADE:
        return dml.delete_where(db, fk.child_table, child_pred)
    if action is ReferentialAction.SET_NULL:
        assignments = {column: NULL for column in fk.fk_columns}
        return dml.update_where(db, fk.child_table, assignments, child_pred)
    if action is ReferentialAction.SET_DEFAULT:
        child = db.table(fk.child_table)
        assignments = {}
        for column in fk.fk_columns:
            default = child.schema.column(column).default
            assignments[column] = default
        count = dml.update_where(db, fk.child_table, assignments, child_pred)
        if count and any(v is not NULL for v in assignments.values()):
            # SQL requires the defaulted value to satisfy the constraint.
            probe_row: list[Any] = [NULL] * len(child.schema)
            for column, value in assignments.items():
                probe_row[child.schema.position(column)] = value
            check_child_write(db, fk, probe_row)
        return count
    raise IntegrityError(f"unsupported referential action {action!r}")
