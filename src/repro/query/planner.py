"""Cost-based access-path selection.

The planner decides, for a single-table predicate, whether to probe an
index or scan the heap.  Its rules are a deliberate model of what the
paper measured on MySQL 5.6 (§7.5):

1. **Leftmost-prefix rule.** A compound B-tree index on ``(c1..cm)`` is a
   candidate iff the predicate has total-value equality terms on a
   leftmost prefix ``c1..cL`` (L >= 1).  Cost = estimated matching
   entries for the prefix.
2. **IS NULL is not sargable.**  Null-state terms are answered by
   post-filtering, never by ref access.  This reproduces the paper's
   observation that Hybrid "requires one scan through all tuples ...
   [for] children that feature null on the left-most column".
3. **Hash indexes** serve only full-key equality.
4. **Planner overhead scales with the number of indexes**: every index
   examined charges one ``planner_candidates`` unit, the second factor
   the paper cites for Powerset losing to Bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..indexes.definition import IndexKind
from ..indexes.manager import TableIndex
from ..storage.table import Table
from .predicate import ConjunctionProfile, Predicate


@dataclass
class AccessPath:
    """The outcome of planning one single-table predicate.

    ``index`` is None for a full heap scan.  ``prefix_values`` are the
    total values bound to the leading index columns (the ref-access key);
    ``estimated_rows`` is the number of entries the probe is expected to
    touch before residual filtering.
    """

    table: Table
    index: TableIndex | None
    prefix_values: tuple[Any, ...]
    estimated_rows: float
    needs_filter: bool

    @property
    def is_full_scan(self) -> bool:
        return self.index is None

    def describe(self) -> str:
        if self.index is None:
            return (
                f"FULL SCAN {self.table.name} "
                f"(~{self.table.row_count} rows examined)"
            )
        cols = ", ".join(self.index.columns[: len(self.prefix_values)])
        filt = " + filter" if self.needs_filter else ""
        return (
            f"REF {self.table.name} via {self.index.name} ({cols}) "
            f"~{self.estimated_rows:.1f} rows{filt}"
        )


def plan(table: Table, predicate: Predicate | None) -> AccessPath:
    """Choose the cheapest access path for *predicate* on *table*.

    Plans are cached per predicate *shape* (the set of equality columns
    and IS NULL columns) and per index-set version, the way production
    engines cache prepared plans: the enforcement triggers issue the same
    probe shapes thousands of times with different constants, and
    re-running index selection each time would make the optimizer — not
    the data — the bottleneck.  The ``planner_candidates`` cost counter
    is still charged per query so the Powerset-style optimizer overhead
    the paper discusses stays visible in the logical costs.
    """
    profile = ConjunctionProfile(predicate)
    return plan_profile(table, profile, has_predicate=predicate is not None)


def plan_profile(
    table: Table, profile: ConjunctionProfile, has_predicate: bool = True
) -> AccessPath:
    """Plan from an already-analysed predicate shape (prepared probes)."""
    table.tracker.count("planner_candidates", len(table.indexes))
    if profile.sargable and profile.eq:
        _index_dives(table, profile)

    shape = (
        table.indexes.version,
        frozenset(profile.eq),
        frozenset(profile.null_cols),
        profile.residual,
        profile.sargable,
        has_predicate,
    )
    cache = table._plan_cache
    cached = cache.get(shape)
    if cached is not None:
        index_name, prefix_columns, needs_filter = cached
        if index_name is None:
            return AccessPath(
                table, None, (), float(table.row_count), has_predicate
            )
        index = table.indexes.get(index_name)
        values = tuple(profile.eq[c] for c in prefix_columns)
        return AccessPath(table, index, values, 0.0, needs_filter)

    path = _plan_uncached(table, profile, has_predicate)
    if len(cache) > 512:  # bounded cache, enforcement shapes are few
        cache.clear()
    if path.index is None:
        cache[shape] = (None, (), path.needs_filter)
    else:
        cache[shape] = (
            path.index.name,
            path.index.columns[: len(path.prefix_values)],
            path.needs_filter,
        )
    return path


def _index_dives(table: Table, profile: ConjunctionProfile) -> None:
    """Selectivity dives: one B-tree descent per usable candidate index.

    MySQL 5.6 — the paper's system — estimates equality-range selectivity
    with *index dives* on every statement execution (statements inside
    trigger bodies are re-optimized each time).  This is the second cost
    the paper attributes to Powerset: "to choose the index from all the
    options in Powerset" (§7.2).  The dive itself is a real descent, so
    its cost appears in both wall-clock time and ``index_node_reads``.
    """
    eq = profile.eq
    for index in table.indexes:
        if index.kind is not IndexKind.BTREE:
            continue
        first = index.columns[0]
        if first in eq:
            index.dive(eq[first])


def _plan_uncached(
    table: Table, profile: ConjunctionProfile, has_predicate: bool
) -> AccessPath:
    full_scan = AccessPath(
        table=table,
        index=None,
        prefix_values=(),
        estimated_rows=float(table.row_count),
        needs_filter=has_predicate,
    )
    if not profile.sargable or not profile.eq:
        return full_scan

    best: AccessPath | None = None
    best_key: tuple[float, int, str] | None = None
    for index in table.indexes:
        candidate = _candidate_for(table, index, profile)
        if candidate is None:
            continue
        # Prefer fewer estimated rows; break ties with a longer prefix
        # (more selective residual) and then the index name (determinism).
        key = (
            candidate.estimated_rows,
            -len(candidate.prefix_values),
            index.name,
        )
        if best_key is None or key < best_key:
            best, best_key = candidate, key

    if best is None or best.estimated_rows >= full_scan.estimated_rows:
        return full_scan
    return best


def _candidate_for(
    table: Table, index: TableIndex, profile: ConjunctionProfile
) -> AccessPath | None:
    """Build the access path offered by one index, or None if unusable."""
    if index.kind is IndexKind.HASH:
        values = []
        for column in index.columns:
            if column not in profile.eq:
                return None
            values.append(profile.eq[column])
        positions = list(index.positions)
        estimate = table.statistics.estimate_prefix(positions, values)
        needs_filter = _residual_after(index.columns, profile)
        return AccessPath(table, index, tuple(values), estimate, needs_filter)

    # B-tree: bind the longest leftmost prefix of total-value equalities.
    values = []
    for column in index.columns:
        if column not in profile.eq:
            break
        values.append(profile.eq[column])
    if not values:
        return None
    positions = list(index.positions[: len(values)])
    estimate = table.statistics.estimate_prefix(positions, values)
    needs_filter = _residual_after(index.columns[: len(values)], profile)
    return AccessPath(table, index, tuple(values), estimate, needs_filter)


def _residual_after(bound_columns: tuple[str, ...], profile: ConjunctionProfile) -> bool:
    """Does anything remain to filter after ref access on bound columns?"""
    unbound_eq = set(profile.eq) - set(bound_columns)
    return bool(unbound_eq) or bool(profile.null_cols) or profile.residual
