"""Execution of single-table reads: scans, lookups, existence probes.

The executor turns an :class:`~repro.query.planner.AccessPath` into rows,
charging logical costs along the way:

* ``rows_fetched``  — heap fetches performed to materialise index hits,
* ``rows_examined`` — rows run through the residual filter,
* ``full_scans``    — heap scans started (the quantity the paper's §7.5
  analysis tracks for Hybrid's poor deletions).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any

from ..storage.database import Database
from ..storage.heap import Row
from ..storage.table import Table
from . import planner
from .predicate import Predicate


def iter_matching(
    table: Table, predicate: Predicate | None, view: Any = None
) -> Iterator[tuple[int, Row]]:
    """Yield (rid, row) for every row of *table* matching *predicate*.

    Full scans compile the predicate to a position-bound closure and
    count examined rows in bulk (the scan may be abandoned early by a
    LIMIT-1 consumer, in which case only the rows actually visited are
    charged — mirroring how a real engine stops reading pages).

    With *view* (an MVCC :class:`~repro.storage.versions.ReadView`) the
    scan observes the view's read LSN instead of the committed tip; see
    :func:`_iter_matching_view`.
    """
    if view is not None:
        return _iter_matching_view(table, predicate, view)
    return _iter_matching_tip(table, predicate)


def _iter_matching_tip(
    table: Table, predicate: Predicate | None
) -> Iterator[tuple[int, Row]]:
    path = planner.plan(table, predicate)
    tracker = table.tracker
    if path.is_full_scan:
        tracker.count("full_scans")
        test = None if predicate is None else predicate.compile(table.schema)
        examined = 0
        try:
            for rid, row in table.heap.scan_unordered():
                examined += 1
                if test is None or test(row):
                    yield rid, row
        finally:
            tracker.count("rows_examined", examined)
        return

    assert path.index is not None
    test = (
        predicate.compile(table.schema)
        if (path.needs_filter and predicate is not None)
        else None
    )
    get_row = table.heap.get
    fetched = 0
    examined = 0
    try:
        for rid in path.index.scan_equal(path.prefix_values):
            row = get_row(rid)
            fetched += 1
            if test is not None:
                examined += 1
                if not test(row):
                    continue
            yield rid, row
    finally:
        tracker.count("rows_fetched", fetched)
        tracker.count("rows_examined", examined)


def _iter_matching_view(
    table: Table, predicate: Predicate | None, view: Any
) -> Iterator[tuple[int, Row]]:
    """The snapshot-read scan: resolve every row as of the view's LSN.

    Heap/index entries always reflect the committed tip, so the scan
    skips every rid the view marks *divergent* (uncommitted writes by
    others, or commits newer than the read LSN) and afterwards
    supplements them — resolved through :meth:`ReadView.row` and run
    through the **full** compiled predicate, since an index hit on the
    tip proves nothing about an older version.  Cost accounting mirrors
    the tip-state scan: examined rows, heap fetches and full scans are
    charged the same way.
    """
    tracker = table.tracker
    name = table.name
    divergent = view.divergent_rids(name)
    full_test = None if predicate is None else predicate.compile(table.schema)
    path = planner.plan(table, predicate)

    if path.is_full_scan:
        tracker.count("full_scans")
        examined = 0
        try:
            for rid, row in table.heap.scan_unordered():
                if rid in divergent:
                    continue
                examined += 1
                if full_test is None or full_test(row):
                    yield rid, row
        finally:
            tracker.count("rows_examined", examined)
    else:
        assert path.index is not None
        residual_test = full_test if path.needs_filter else None
        get_row = table.heap.get
        fetched = 0
        examined = 0
        try:
            for rid in path.index.scan_equal(path.prefix_values):
                if rid in divergent:
                    continue
                row = get_row(rid)
                fetched += 1
                if residual_test is not None:
                    examined += 1
                    if not residual_test(row):
                        continue
                yield rid, row
        finally:
            tracker.count("rows_fetched", fetched)
            tracker.count("rows_examined", examined)

    examined = 0
    try:
        for rid in sorted(divergent):
            row = view.row(name, rid)
            if row is None:
                continue
            examined += 1
            if full_test is None or full_test(row):
                yield rid, row
    finally:
        tracker.count("rows_examined", examined)


def select(
    db: Database,
    table_name: str,
    predicate: Predicate | None = None,
    columns: Sequence[str] | None = None,
    limit: int | None = None,
    view: Any = None,
) -> list[tuple[Any, ...]]:
    """Materialise matching rows, optionally projected and limited."""
    table = db.table(table_name)
    out: list[tuple[Any, ...]] = []
    for __, row in iter_matching(table, predicate, view):
        out.append(table.project(row, columns) if columns else row)
        if limit is not None and len(out) >= limit:
            break
    return out


def select_rids(
    db: Database,
    table_name: str,
    predicate: Predicate | None = None,
    limit: int | None = None,
) -> list[int]:
    """Like :func:`select` but return rids (the DML layer's currency)."""
    table = db.table(table_name)
    out: list[int] = []
    for rid, __ in iter_matching(table, predicate):
        out.append(rid)
        if limit is not None and len(out) >= limit:
            break
    return out


def exists(
    db: Database,
    table_name: str,
    predicate: Predicate | None = None,
    view: Any = None,
) -> bool:
    """LIMIT-1 existence probe — the primitive of the paper's triggers.

    Stops at the first match, so a successful ref-access probe touches
    O(height) index nodes, while a failing full scan touches every row.
    """
    table = db.table(table_name)
    for __ in iter_matching(table, predicate, view):
        return True
    return False


def count(
    db: Database, table_name: str, predicate: Predicate | None = None
) -> int:
    """Number of matching rows."""
    table = db.table(table_name)
    return sum(1 for __ in iter_matching(table, predicate))
