"""Logical DML: inserts, deletes and updates with full enforcement.

Statement flow (modelled on MySQL, which the paper's experiments used):

``INSERT INTO C``
    BEFORE INSERT triggers → key checks → native FK child checks →
    physical insert → AFTER INSERT triggers.

``DELETE FROM P``
    per victim row: BEFORE DELETE triggers → native RESTRICT checks →
    physical delete → native referential actions → AFTER DELETE triggers
    (where the paper's generated partial-semantics trigger lives).

``UPDATE``
    per row: treated as the paper treats it — the parent side only
    matters when key columns change (delete + insert), the child side
    re-checks the new foreign-key value.

Every row touched is recorded in the active transaction's undo log (if a
transaction is open) so batched update experiments (§7.4) can roll back.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

from ..concurrency import hooks
from ..constraints.foreign_key import EnforcementMode
from ..errors import QueryError
from ..storage.heap import Row
from ..testing.faults import fire
from ..triggers.framework import TriggerEvent
from . import enforcement, executor
from .predicate import Predicate

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.database import Database


def _log_undo(db: "Database", entry: tuple) -> None:
    txn = db.active_transaction
    if txn is not None:
        txn.log(entry)
    else:
        wal = db.wal
        if wal is not None:
            # Auto-commit: each statement is its own tiny transaction.
            wal.log_autocommit(entry)
    versions = db.versions
    if versions is not None:
        versions.on_mutation(entry, txn)


# ----------------------------------------------------------------------
# INSERT


def insert(db: "Database", table_name: str, values: Sequence[Any] | Mapping[str, Any]) -> int:
    """Insert one row with full integrity enforcement; returns the rid."""
    table = db.table(table_name)
    if isinstance(values, Mapping):
        row = table.schema.row_from_mapping(values)
    else:
        row = table.schema.validate_row(values)

    # Multi-session: writer locks come first, before any check reads
    # state that a concurrent transaction could still change.
    hooks.lock_for_insert(db, table_name, row)
    db.triggers.fire(db, table_name, TriggerEvent.BEFORE_INSERT, None, row)

    for key in db.candidate_keys.get(table_name, ()):
        key.check_insert(db, row)
    for fk in db.foreign_keys_on_child(table_name):
        if fk.enforcement is EnforcementMode.NATIVE:
            enforcement.check_child_write(db, fk, row)

    fire("dml.insert.pre")
    rid = table.insert_row(row, pre_validated=True)
    _log_undo(db, ("insert", table_name, rid, row))
    fire("dml.insert.post")
    db.triggers.fire(db, table_name, TriggerEvent.AFTER_INSERT, None, row, rid)
    return rid


# ----------------------------------------------------------------------
# DELETE


def delete_where(
    db: "Database", table_name: str, predicate: Predicate | None = None
) -> int:
    """Delete all matching rows; returns how many were removed."""
    table = db.table(table_name)
    victims = list(executor.iter_matching(table, predicate))
    for rid, row in victims:
        delete_rid(db, table_name, rid, row)
    return len(victims)


def delete_rid(
    db: "Database", table_name: str, rid: int, row: Row | None = None
) -> Row:
    """Delete one row by rid, with triggers and referential actions."""
    table = db.table(table_name)
    if row is None:
        row = table.get_row(rid)

    # Multi-session: X on the victim's candidate keys and, when this
    # table is a referenced parent, on its referenced-key values — the
    # delete side of the phantom-parent handshake (child checks hold S
    # on the witness key they adopted).
    hooks.lock_for_delete(db, table_name, row)
    db.triggers.fire(db, table_name, TriggerEvent.BEFORE_DELETE, row, None, rid)
    native_fks = [
        fk
        for fk in db.foreign_keys_on_parent(table_name)
        if fk.enforcement is EnforcementMode.NATIVE
    ]
    for fk in native_fks:
        enforcement.restrict_parent_remove(db, fk, row)

    fire("dml.delete.pre")
    table.delete_rid(rid)
    _log_undo(db, ("delete", table_name, rid, row))
    fire("dml.delete.post")

    for fk in native_fks:
        enforcement.handle_parent_removed(db, fk, row)
    db.triggers.fire(db, table_name, TriggerEvent.AFTER_DELETE, row, None, rid)
    return row


# ----------------------------------------------------------------------
# UPDATE


def update_where(
    db: "Database",
    table_name: str,
    assignments: Mapping[str, Any],
    predicate: Predicate | None = None,
) -> int:
    """Update all matching rows; returns how many were changed."""
    if not assignments:
        raise QueryError("UPDATE needs at least one assignment")
    table = db.table(table_name)
    positions = {table.schema.position(c): v for c, v in assignments.items()}
    victims = list(executor.iter_matching(table, predicate))
    changed = 0
    for rid, old_row in victims:
        new_row = tuple(
            positions.get(i, v) for i, v in enumerate(old_row)
        )
        if new_row == old_row:
            continue
        update_rid(db, table_name, rid, new_row, old_row)
        changed += 1
    return changed


def update_rid(
    db: "Database",
    table_name: str,
    rid: int,
    new_values: Sequence[Any],
    old_row: Row | None = None,
) -> tuple[Row, Row]:
    """Update one row by rid, with triggers and referential actions."""
    table = db.table(table_name)
    if old_row is None:
        old_row = table.get_row(rid)
    new_row = table.schema.validate_row(new_values)

    hooks.lock_for_update(db, table_name, old_row, new_row)
    db.triggers.fire(db, table_name, TriggerEvent.BEFORE_UPDATE, old_row, new_row, rid)

    for key in db.candidate_keys.get(table_name, ()):
        key.check_insert(db, new_row, ignore_rid=rid)
    for fk in db.foreign_keys_on_child(table_name):
        if fk.enforcement is EnforcementMode.NATIVE:
            if fk.child_values(new_row) != fk.child_values(old_row):
                enforcement.check_child_write(db, fk, new_row)

    # Parent-side: an update of referenced key columns acts as a delete
    # followed by an insert of the new key (paper §3).
    native_parent_fks = [
        fk
        for fk in db.foreign_keys_on_parent(table_name)
        if fk.enforcement is EnforcementMode.NATIVE
        and fk.parent_values(new_row) != fk.parent_values(old_row)
    ]
    for fk in native_parent_fks:
        if fk.on_update.rejects:
            enforcement.restrict_parent_remove(db, fk, old_row)

    fire("dml.update.pre")
    table.update_rid(rid, new_row, pre_validated=True)
    _log_undo(db, ("update", table_name, rid, old_row, new_row))
    fire("dml.update.post")

    for fk in native_parent_fks:
        enforcement.handle_parent_removed(db, fk, old_row, fk.on_update)
    db.triggers.fire(db, table_name, TriggerEvent.AFTER_UPDATE, old_row, new_row, rid)
    return old_row, new_row
