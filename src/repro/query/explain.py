"""EXPLAIN: render the chosen access path for a predicate.

Mirrors the role of MySQL's ``EXPLAIN`` statement, which the paper uses
in §7.5 to diagnose why Hybrid full-scans the child table on deletions.
"""

from __future__ import annotations

from ..storage.database import Database
from . import planner
from .predicate import Predicate


def explain(
    db: Database, table_name: str, predicate: Predicate | None = None
) -> str:
    """One-line plan description for SELECT ... WHERE *predicate*."""
    table = db.table(table_name)
    path = planner.plan(table, predicate)
    where = predicate.sql() if predicate is not None else "TRUE"
    return f"SELECT FROM {table_name} WHERE {where}\n  -> {path.describe()}"


def explain_path(
    db: Database, table_name: str, predicate: Predicate | None = None
) -> planner.AccessPath:
    """Return the raw access path (for programmatic assertions)."""
    return planner.plan(db.table(table_name), predicate)
