"""Predicates: the WHERE-clause fragment the engine understands.

The enforcement triggers of the paper only need conjunctions of
``column = value`` and ``column IS NULL`` terms, plus the disjunctions
appearing in the generated referential-action updates.  The predicate
algebra here covers exactly that (with comparisons and negation rounding
it out for the example applications).

Evaluation uses SQL-flavoured two-valued logic: any comparison touching a
NULL marker is *not satisfied* (SQL's UNKNOWN collapses to False in a
WHERE clause), while ``IS NULL`` / ``IS NOT NULL`` test the marker itself.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Sequence
from typing import Any

from ..errors import QueryError
from ..nulls import NULL
from ..storage.schema import TableSchema

Row = tuple[Any, ...]


class Predicate:
    """Abstract base: a boolean condition over one table's rows."""

    def evaluate(self, row: Sequence[Any], schema: TableSchema) -> bool:
        raise NotImplementedError

    def compile(self, schema: TableSchema) -> Callable[[Sequence[Any]], bool]:
        """Return a fast closure with column positions pre-resolved.

        Full scans evaluate the predicate once per row; resolving column
        names through the schema on every call would dominate the scan,
        so each predicate type compiles itself to a position-bound
        closure.  The default falls back to :meth:`evaluate`.
        """
        return lambda row: self.evaluate(row, schema)

    def columns(self) -> set[str]:
        """All column names referenced by the predicate."""
        raise NotImplementedError

    def sql(self) -> str:
        """Render as SQL text (for EXPLAIN and the trigger generator)."""
        raise NotImplementedError

    # Combinators ------------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self.sql()}>"


class TruePredicate(Predicate):
    """Matches every row (the absent WHERE clause)."""

    def evaluate(self, row: Sequence[Any], schema: TableSchema) -> bool:
        return True

    def columns(self) -> set[str]:
        return set()

    def sql(self) -> str:
        return "TRUE"


#: Shared instance for "no WHERE clause".
ALWAYS = TruePredicate()


def _render_value(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


class Eq(Predicate):
    """``column = value`` with a *total* value.

    Constructing an equality against NULL raises immediately: SQL's
    ``col = NULL`` is never true, which is a classic source of silent
    bugs — use :class:`IsNull` instead.
    """

    __slots__ = ("column", "value")

    def __init__(self, column: str, value: Any) -> None:
        if value is NULL or value is None:
            raise QueryError(
                f"Eq({column!r}, NULL) is never true; use IsNull({column!r})"
            )
        self.column = column
        self.value = value

    def evaluate(self, row: Sequence[Any], schema: TableSchema) -> bool:
        actual = row[schema.position(self.column)]
        return actual is not NULL and actual == self.value

    def compile(self, schema: TableSchema) -> Callable[[Sequence[Any]], bool]:
        pos, value = schema.position(self.column), self.value
        return lambda row: row[pos] is not NULL and row[pos] == value

    def columns(self) -> set[str]:
        return {self.column}

    def sql(self) -> str:
        return f"{self.column} = {_render_value(self.value)}"


class IsNull(Predicate):
    """``column IS NULL``."""

    __slots__ = ("column",)

    def __init__(self, column: str) -> None:
        self.column = column

    def evaluate(self, row: Sequence[Any], schema: TableSchema) -> bool:
        return row[schema.position(self.column)] is NULL

    def compile(self, schema: TableSchema) -> Callable[[Sequence[Any]], bool]:
        pos = schema.position(self.column)
        return lambda row: row[pos] is NULL

    def columns(self) -> set[str]:
        return {self.column}

    def sql(self) -> str:
        return f"{self.column} IS NULL"


class IsNotNull(Predicate):
    """``column IS NOT NULL``."""

    __slots__ = ("column",)

    def __init__(self, column: str) -> None:
        self.column = column

    def evaluate(self, row: Sequence[Any], schema: TableSchema) -> bool:
        return row[schema.position(self.column)] is not NULL

    def compile(self, schema: TableSchema) -> Callable[[Sequence[Any]], bool]:
        pos = schema.position(self.column)
        return lambda row: row[pos] is not NULL

    def columns(self) -> set[str]:
        return {self.column}

    def sql(self) -> str:
        return f"{self.column} IS NOT NULL"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "!=": operator.ne,
}


class Cmp(Predicate):
    """``column <op> value`` for <, <=, >, >=, !=.

    Comparisons are filter-only in this engine (the planner never uses
    them for index access); the paper's workloads do not need range
    access paths.
    """

    __slots__ = ("column", "op", "value")

    def __init__(self, column: str, op: str, value: Any) -> None:
        if op not in _COMPARATORS:
            raise QueryError(f"unknown comparison operator {op!r}")
        if value is NULL or value is None:
            raise QueryError("comparisons against NULL are never true")
        self.column = column
        self.op = op
        self.value = value

    def evaluate(self, row: Sequence[Any], schema: TableSchema) -> bool:
        actual = row[schema.position(self.column)]
        if actual is NULL:
            return False
        return _COMPARATORS[self.op](actual, self.value)

    def columns(self) -> set[str]:
        return {self.column}

    def sql(self) -> str:
        return f"{self.column} {self.op} {_render_value(self.value)}"


class And(Predicate):
    """Conjunction; nested Ands are flattened for planner analysis."""

    __slots__ = ("children",)

    def __init__(self, *children: Predicate) -> None:
        flat: list[Predicate] = []
        for child in children:
            if isinstance(child, And):
                flat.extend(child.children)
            elif isinstance(child, TruePredicate):
                continue
            else:
                flat.append(child)
        self.children: tuple[Predicate, ...] = tuple(flat)

    def evaluate(self, row: Sequence[Any], schema: TableSchema) -> bool:
        return all(child.evaluate(row, schema) for child in self.children)

    def compile(self, schema: TableSchema) -> Callable[[Sequence[Any]], bool]:
        tests = [child.compile(schema) for child in self.children]
        if not tests:
            return lambda row: True

        def conjunction(row: Sequence[Any]) -> bool:
            for test in tests:
                if not test(row):
                    return False
            return True

        return conjunction

    def columns(self) -> set[str]:
        return set().union(*(c.columns() for c in self.children)) if self.children else set()

    def sql(self) -> str:
        if not self.children:
            return "TRUE"
        return " AND ".join(
            f"({c.sql()})" if isinstance(c, Or) else c.sql() for c in self.children
        )


class Or(Predicate):
    """Disjunction.  Non-sargable: its presence forces a full scan, the
    behaviour the paper observed for its OR-ed trigger updates (§7.5)."""

    __slots__ = ("children",)

    def __init__(self, *children: Predicate) -> None:
        flat: list[Predicate] = []
        for child in children:
            if isinstance(child, Or):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            raise QueryError("Or() needs at least one operand")
        self.children: tuple[Predicate, ...] = tuple(flat)

    def evaluate(self, row: Sequence[Any], schema: TableSchema) -> bool:
        return any(child.evaluate(row, schema) for child in self.children)

    def compile(self, schema: TableSchema) -> Callable[[Sequence[Any]], bool]:
        tests = [child.compile(schema) for child in self.children]

        def disjunction(row: Sequence[Any]) -> bool:
            for test in tests:
                if test(row):
                    return True
            return False

        return disjunction

    def columns(self) -> set[str]:
        return set().union(*(c.columns() for c in self.children))

    def sql(self) -> str:
        return " OR ".join(c.sql() for c in self.children)


class Not(Predicate):
    """Negation (filter-only)."""

    __slots__ = ("child",)

    def __init__(self, child: Predicate) -> None:
        self.child = child

    def evaluate(self, row: Sequence[Any], schema: TableSchema) -> bool:
        return not self.child.evaluate(row, schema)

    def columns(self) -> set[str]:
        return self.child.columns()

    def sql(self) -> str:
        return f"NOT ({self.child.sql()})"


# ----------------------------------------------------------------------
# Helpers used throughout the enforcement code


def equalities(columns: Sequence[str], values: Sequence[Any]) -> Predicate:
    """Conjunction of Eq/IsNull terms pairing *columns* with *values*.

    NULL values become ``IS NULL`` terms — this builds exactly the
    state-matching predicates of the paper's triggers.
    """
    if len(columns) != len(values):
        raise QueryError("columns and values must have equal length")
    terms: list[Predicate] = []
    for column, value in zip(columns, values):
        if value is NULL:
            terms.append(IsNull(column))
        else:
            terms.append(Eq(column, value))
    if not terms:
        return ALWAYS
    if len(terms) == 1:
        return terms[0]
    return And(*terms)


class ConjunctionProfile:
    """Planner-facing analysis of a predicate.

    Splits a predicate into:

    * ``eq``        — {column: total value} equality terms,
    * ``null_cols`` — columns constrained by IS NULL,
    * ``residual``  — True when other terms exist (filters still apply),
    * ``sargable``  — False when the *top level* is not a conjunction
      (Or / Not / Cmp), in which case no index access is attempted.
    """

    __slots__ = ("eq", "null_cols", "residual", "sargable")

    @classmethod
    def from_parts(
        cls,
        eq: dict[str, Any],
        null_cols: set[str] | frozenset[str] = frozenset(),
        residual: bool = False,
    ) -> "ConjunctionProfile":
        """Build a profile directly (the prepared-probe fast path).

        The enforcement triggers issue millions of probes with a fixed
        shape; constructing Eq/IsNull objects per probe just to tear them
        back apart here would dominate the probe itself.
        """
        profile = cls.__new__(cls)
        profile.eq = eq
        profile.null_cols = set(null_cols)
        profile.residual = residual
        profile.sargable = bool(eq)
        return profile

    def __init__(self, predicate: Predicate | None) -> None:
        self.eq: dict[str, Any] = {}
        self.null_cols: set[str] = set()
        self.residual = False
        self.sargable = True
        if predicate is None or isinstance(predicate, TruePredicate):
            return
        conjuncts = (
            predicate.children if isinstance(predicate, And) else (predicate,)
        )
        for term in conjuncts:
            if isinstance(term, Eq):
                if term.column in self.eq and self.eq[term.column] != term.value:
                    # contradictory equalities: keep first, filter catches it
                    self.residual = True
                    continue
                self.eq[term.column] = term.value
            elif isinstance(term, IsNull):
                self.null_cols.add(term.column)
            else:
                self.residual = True
                if not isinstance(term, (IsNotNull, Cmp, Not, Or)):
                    # unknown predicate type: be conservative
                    self.sargable = False
        if not self.eq:
            # Nothing for an index to bite on.
            self.sargable = bool(self.eq)
